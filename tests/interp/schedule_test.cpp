// Schedule-aware plan replay (interp/schedule.hpp): the per-core slice
// streams of a static parallel schedule must partition the serial stream
// (each slice a subsequence, the union exact), cores == 1 must reproduce
// executePlan instruction for instruction, and the interleaved referee
// stream must be a permutation of the serial stream with the documented
// round-robin order.
#include "interp/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "driver/pipeline.hpp"
#include "interp/plan.hpp"
#include "ir/builder.hpp"

namespace gcr {
namespace {

// Heap-allocated so the compiled plan's borrowed Program/DataLayout
// pointers stay stable (the plan must not outlive or out-move them).
struct CompiledVersion {
  ProgramVersion version;
  DataLayout layout;
  PlanCompileResult compiled;

  CompiledVersion(ProgramVersion v, std::int64_t n, std::uint64_t timeSteps)
      : version(std::move(v)), layout(version.layoutAt(n)) {
    compiled = compilePlan(version.program, layout,
                           ExecOptions{.n = n, .timeSteps = timeSteps});
  }
};

std::unique_ptr<CompiledVersion> compileApp(const std::string& app,
                                            Strategy strategy, std::int64_t n,
                                            std::uint64_t timeSteps = 1) {
  Program p = apps::buildApp(app);
  return std::make_unique<CompiledVersion>(makeVersion(p, strategy), n,
                                           timeSteps);
}

std::string instanceKey(const InstrTrace& t, std::size_t i) {
  std::ostringstream os;
  os << t.stmtId(i) << "|" << t.writeAddr(i) << "|";
  for (std::int64_t r : t.reads(i)) os << r << ",";
  return os.str();
}

std::vector<std::string> traceKeys(const InstrTrace& t) {
  std::vector<std::string> keys;
  keys.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) keys.push_back(instanceKey(t, i));
  return keys;
}

// True iff `sub` appears in `full` in order (as a subsequence).
bool isSubsequence(const std::vector<std::string>& sub,
                   const std::vector<std::string>& full) {
  std::size_t j = 0;
  for (const std::string& k : full) {
    if (j < sub.size() && sub[j] == k) ++j;
  }
  return j == sub.size();
}

TEST(Schedule, SingleCoreSliceReproducesExecutePlan) {
  for (const char* app : {"ADI", "Swim", "Tomcatv"}) {
    SCOPED_TRACE(app);
    for (Strategy s : {Strategy::NoOpt, Strategy::Fused}) {
      const auto c = compileApp(app, s, 20);
      ASSERT_TRUE(c->compiled.ok()) << c->compiled.reason;

      InstrTrace serial;
      executePlan(*c->compiled.plan, {.n = 20}, &serial);
      for (ParallelSchedule sched :
           {ParallelSchedule::Block, ParallelSchedule::Cyclic}) {
        InstrTrace slice;
        replaySlice(*c->compiled.plan, {1, 0, sched}, &slice);
        ASSERT_EQ(slice.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
          ASSERT_EQ(instanceKey(slice, i), instanceKey(serial, i))
              << "instance " << i;
      }
    }
  }
}

TEST(Schedule, SlicesPartitionTheSerialStream) {
  for (const char* app : {"ADI", "SP"}) {
    SCOPED_TRACE(app);
    const auto c = compileApp(app, Strategy::Fused, 12);
    ASSERT_TRUE(c->compiled.ok()) << c->compiled.reason;
    InstrTrace serialTrace;
    executePlan(*c->compiled.plan, {.n = 12}, &serialTrace);
    const std::vector<std::string> serial = traceKeys(serialTrace);

    for (int cores : {2, 3, 4, 8}) {
      for (ParallelSchedule sched :
           {ParallelSchedule::Block, ParallelSchedule::Cyclic}) {
        SCOPED_TRACE(std::string(parallelScheduleName(sched)) + "/" +
                     std::to_string(cores));
        std::vector<std::string> merged;
        for (int core = 0; core < cores; ++core) {
          InstrTrace t;
          replaySlice(*c->compiled.plan, {cores, core, sched}, &t);
          const std::vector<std::string> keys = traceKeys(t);
          // Every slice preserves serial order: it is a subsequence.
          EXPECT_TRUE(isSubsequence(keys, serial))
              << "core " << core << " stream is not in serial order";
          merged.insert(merged.end(), keys.begin(), keys.end());
        }
        // The slices cover the serial stream exactly once (multiset equality).
        ASSERT_EQ(merged.size(), serial.size());
        std::vector<std::string> a = merged, b = serial;
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(Schedule, BlockAndCyclicAssignTheDocumentedIterations) {
  // One parallel loop, one statement writing A[i]: the write addresses ARE
  // the iteration numbers (times 8), so the slice contents are directly
  // checkable against the schedule definition.
  ProgramBuilder b("onestmt");
  ArrayId a = b.array("A", {AffineN::N() + 1});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  Program p = b.take();
  const std::int64_t n = 10;  // trips = 10
  DataLayout layout = contiguousLayout(p, n);
  const PlanCompileResult c = compilePlan(p, layout, {.n = n});
  ASSERT_TRUE(c.ok()) << c.reason;

  auto sliceWrites = [&](int cores, int core, ParallelSchedule sched) {
    InstrTrace t;
    replaySlice(*c.plan, {cores, core, sched}, &t);
    std::vector<std::int64_t> iters;
    for (std::size_t i = 0; i < t.size(); ++i)
      iters.push_back(t.writeAddr(i) / 8);
    return iters;
  };

  // Block over 4 cores, 10 trips: chunks of 3,3,2,2.
  EXPECT_EQ(sliceWrites(4, 0, ParallelSchedule::Block),
            (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(sliceWrites(4, 1, ParallelSchedule::Block),
            (std::vector<std::int64_t>{3, 4, 5}));
  EXPECT_EQ(sliceWrites(4, 2, ParallelSchedule::Block),
            (std::vector<std::int64_t>{6, 7}));
  EXPECT_EQ(sliceWrites(4, 3, ParallelSchedule::Block),
            (std::vector<std::int64_t>{8, 9}));

  // Cyclic over 4 cores: position p -> core p mod 4.
  EXPECT_EQ(sliceWrites(4, 0, ParallelSchedule::Cyclic),
            (std::vector<std::int64_t>{0, 4, 8}));
  EXPECT_EQ(sliceWrites(4, 1, ParallelSchedule::Cyclic),
            (std::vector<std::int64_t>{1, 5, 9}));
  EXPECT_EQ(sliceWrites(4, 3, ParallelSchedule::Cyclic),
            (std::vector<std::int64_t>{3, 7}));
}

TEST(Schedule, ReversedLoopDistributesExecutionOrder) {
  // A reversed loop's iteration SEQUENCE is its reversed order; Block
  // distributes that sequence, so core 0 owns the highest indices.
  ProgramBuilder b("rev");
  ArrayId a = b.array("A", {AffineN::N() + 2});
  b.loopDown("i", 1, AffineN::N(),
             [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  Program p = b.take();
  const std::int64_t n = 6;
  DataLayout layout = contiguousLayout(p, n);
  const PlanCompileResult c = compilePlan(p, layout, {.n = n});
  ASSERT_TRUE(c.ok()) << c.reason;

  InstrTrace t;
  replaySlice(*c.plan, {2, 0, ParallelSchedule::Block}, &t);
  std::vector<std::int64_t> iters;
  for (std::size_t i = 0; i < t.size(); ++i)
    iters.push_back(t.writeAddr(i) / 8);
  EXPECT_EQ(iters, (std::vector<std::int64_t>{6, 5, 4}));
}

TEST(Schedule, InterleavedIsAPermutationOfSerial) {
  for (const char* app : {"ADI", "Swim"}) {
    SCOPED_TRACE(app);
    const auto c = compileApp(app, Strategy::FusedRegrouped, 16,
                                         /*timeSteps=*/2);
    ASSERT_TRUE(c->compiled.ok()) << c->compiled.reason;
    InstrTrace serialTrace;
    executePlan(*c->compiled.plan, {.n = 16, .timeSteps = 2}, &serialTrace);
    std::vector<std::string> serial = traceKeys(serialTrace);
    std::sort(serial.begin(), serial.end());

    for (int cores : {1, 2, 4}) {
      InstrTrace t;
      replayInterleaved(*c->compiled.plan, cores, ParallelSchedule::Block, &t);
      std::vector<std::string> inter = traceKeys(t);
      if (cores == 1) {
        // Degenerate case: exactly the serial stream, order included.
        ASSERT_EQ(t.size(), serialTrace.size());
        for (std::size_t i = 0; i < t.size(); ++i)
          ASSERT_EQ(instanceKey(t, i), instanceKey(serialTrace, i));
      }
      std::sort(inter.begin(), inter.end());
      EXPECT_EQ(inter, serial) << cores << " cores";
    }
  }
}

TEST(Schedule, InterleavedRoundRobinOrder) {
  // Single parallel loop, 2 cores, Block over 6 trips: slices {0,1,2} and
  // {3,4,5} interleave round-robin starting at core 0.
  ProgramBuilder b("rr");
  ArrayId a = b.array("A", {AffineN::N() + 1});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  Program p = b.take();
  const std::int64_t n = 6;
  DataLayout layout = contiguousLayout(p, n);
  const PlanCompileResult c = compilePlan(p, layout, {.n = n});
  ASSERT_TRUE(c.ok()) << c.reason;

  InstrTrace t;
  replayInterleaved(*c.plan, 2, ParallelSchedule::Block, &t);
  std::vector<std::int64_t> iters;
  for (std::size_t i = 0; i < t.size(); ++i)
    iters.push_back(t.writeAddr(i) / 8);
  EXPECT_EQ(iters, (std::vector<std::int64_t>{0, 3, 1, 4, 2, 5}));
}

}  // namespace
}  // namespace gcr
