file(REMOVE_RECURSE
  "CMakeFiles/gcr_ir.dir/builder.cpp.o"
  "CMakeFiles/gcr_ir.dir/builder.cpp.o.d"
  "CMakeFiles/gcr_ir.dir/ir.cpp.o"
  "CMakeFiles/gcr_ir.dir/ir.cpp.o.d"
  "CMakeFiles/gcr_ir.dir/print.cpp.o"
  "CMakeFiles/gcr_ir.dir/print.cpp.o.d"
  "CMakeFiles/gcr_ir.dir/stats.cpp.o"
  "CMakeFiles/gcr_ir.dir/stats.cpp.o.d"
  "CMakeFiles/gcr_ir.dir/validate.cpp.o"
  "CMakeFiles/gcr_ir.dir/validate.cpp.o.d"
  "libgcr_ir.a"
  "libgcr_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
