file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_driven.dir/reuse_driven_test.cpp.o"
  "CMakeFiles/test_reuse_driven.dir/reuse_driven_test.cpp.o.d"
  "test_reuse_driven"
  "test_reuse_driven.pdb"
  "test_reuse_driven[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
