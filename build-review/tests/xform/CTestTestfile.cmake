# CMake generated Testfile for 
# Source directory: /root/repo/tests/xform
# Build directory: /root/repo/build-review/tests/xform
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/xform/test_xform[1]_include.cmake")
