file(REMOVE_RECURSE
  "CMakeFiles/gcr_cachesim.dir/cache.cpp.o"
  "CMakeFiles/gcr_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/gcr_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/gcr_cachesim.dir/hierarchy.cpp.o.d"
  "libgcr_cachesim.a"
  "libgcr_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
