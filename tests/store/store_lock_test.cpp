// Advisory store-lock regression: N forked children hammer one directory
// with a size budget small enough that every put() triggers an eviction
// sweep, so publication renames, sweeps, and reject-unlinks race
// constantly.  The `<dir>/lock` flock serializes the mutators, and the
// invariants tightened by it are asserted here:
//   * no child ever sees a validation reject (a sweep deleting an entry
//     mid-publication would surface as one);
//   * every successful get returns the exact deterministic bytes of its
//     key — never a torn or mixed entry;
//   * the surviving inventory validates entry-for-entry.
// The lock is advisory and best-effort, so this is a stress test of the
// locked fast path, not of lock acquisition failure (that path is the old
// unlocked behavior, covered by store_concurrency_test).
#include <gtest/gtest.h>

#include <sys/file.h>
#include <sys/stat.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "../common/subprocess.hpp"
#include "../common/temp_dir.hpp"
#include "store/store.hpp"

namespace gcr::store {
namespace {

constexpr int kChildren = 4;
constexpr int kItersPerChild = 60;
constexpr std::uint64_t kKeys = 6;

Signature keySig(std::uint64_t k) { return Signature{0x7100 + k, 0x51}; }

std::vector<std::uint8_t> payloadForKey(const Signature& sig) {
  const std::size_t size = 512 + static_cast<std::size_t>(sig.lo % 333);
  std::vector<std::uint8_t> bytes(size);
  for (std::size_t i = 0; i < size; ++i)
    bytes[i] =
        static_cast<std::uint8_t>((sig.lo * 131 + sig.hi * 17 + i) & 0xFF);
  return bytes;
}

bool sameBytes(std::span<const std::uint8_t> a,
               std::span<const std::uint8_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

/// Per-child workload under an eviction-heavy budget.  Distinct return
/// code per violated invariant; runs forked (no gtest asserts).
int hammer(const std::string& dir, int child) {
  ArtifactStore::Options opts;
  opts.dir = dir;
  opts.fsync = false;
  // Roughly two entries' worth: every publication pushes the store over
  // budget, so each put() runs a sweep that races the other children.
  opts.maxBytes = 1600;
  auto store = ArtifactStore::open(opts);
  if (store == nullptr) return 10;

  for (int iter = 0; iter < kItersPerChild; ++iter) {
    const Signature key =
        keySig((static_cast<std::uint64_t>(child) * 7 + iter) % kKeys);
    if (!store->put(ArtifactKind::Measurement, key, payloadForKey(key)))
      return 11;
    const Signature probe =
        keySig(static_cast<std::uint64_t>(iter) % kKeys);
    auto entry = store->get(ArtifactKind::Measurement, probe);
    // Eviction makes misses legitimate; wrong bytes never are.
    if (entry.has_value() &&
        !sameBytes(entry->payload(), payloadForKey(probe)))
      return 12;
  }
  // With all mutators serialized by the lock, no reader may ever observe a
  // half-published or half-deleted entry.
  return store->counters().corruptRejected == 0 ? 0 : 13;
}

TEST(StoreLock, EvictionHammerNeverRejectsOrTears) {
  testing::ScopedTempDir dir("gcr-lock");
  const std::string path = dir.path();

  const std::vector<int> status = testing::runInChildProcesses(
      kChildren, [&path](int child) { return hammer(path, child); });
  ASSERT_EQ(status.size(), static_cast<std::size_t>(kChildren));
  for (int i = 0; i < kChildren; ++i)
    EXPECT_EQ(status[i], 0) << "child " << i;

  // Post-mortem: whatever survived the eviction storm must validate, and
  // the lock file must exist but never be swept (it lives outside objects/).
  ArtifactStore::Options opts;
  opts.dir = path;
  auto store = ArtifactStore::open(opts);
  ASSERT_NE(store, nullptr);
  for (const auto& e : store->scan()) EXPECT_TRUE(e.valid) << e.file;
  EXPECT_EQ(store->counters().corruptRejected, 0u);

  struct stat st {};
  EXPECT_EQ(::stat((path + "/lock").c_str(), &st), 0)
      << "mutators should have created the advisory lock file";
}

TEST(StoreLock, PublicationBlocksWhileLockIsHeld) {
  // Direct probe of the advisory protocol: a foreign holder of <dir>/lock
  // must delay a put()'s publication rename until it releases.
  testing::ScopedTempDir dir("gcr-lock-hold");
  ArtifactStore::Options opts;
  opts.dir = dir.path();
  opts.fsync = false;
  auto store = ArtifactStore::open(opts);
  ASSERT_NE(store, nullptr);

  const int lockFd = ::open((dir.path() + "/lock").c_str(),
                            O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  ASSERT_GE(lockFd, 0);
  ASSERT_EQ(::flock(lockFd, LOCK_EX), 0);

  const Signature key = keySig(0);
  const std::string entryPath = dir.path() + "/objects/" + key.str() + "-" +
                                artifactKindName(ArtifactKind::Measurement) +
                                ".gcra";
  std::thread publisher([&] {
    EXPECT_TRUE(
        store->put(ArtifactKind::Measurement, key, payloadForKey(key)));
  });
  // While we hold the lock the entry must not become visible: the rename
  // happens inside the critical section that is blocked on us.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    struct stat st {};
    EXPECT_NE(::stat(entryPath.c_str(), &st), 0)
        << "publication escaped the advisory lock";
  }
  ASSERT_EQ(::flock(lockFd, LOCK_UN), 0);
  publisher.join();
  ::close(lockFd);

  auto entry = store->get(ArtifactKind::Measurement, key);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(sameBytes(entry->payload(), payloadForKey(key)));
}

TEST(StoreLock, ThreadsOfOneProcessSerializeThroughTheLock) {
  // flock ownership is per open-file-description; the per-operation open in
  // the store gives threads of one process real mutual exclusion too.
  // TSan-checked via the CI tsan job.
  testing::ScopedTempDir dir("gcr-lock-mt");
  ArtifactStore::Options opts;
  opts.dir = dir.path();
  opts.fsync = false;
  opts.maxBytes = 1600;  // eviction on every put, as in the fork hammer
  auto store = ArtifactStore::open(opts);
  ASSERT_NE(store, nullptr);

  std::vector<std::thread> threads;
  std::vector<int> results(kChildren, -1);
  for (int t = 0; t < kChildren; ++t)
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < kItersPerChild; ++iter) {
        const Signature key =
            keySig((static_cast<std::uint64_t>(t) * 11 + iter) % kKeys);
        if (!store->put(ArtifactKind::Measurement, key, payloadForKey(key))) {
          results[t] = 1;
          return;
        }
        auto entry = store->get(ArtifactKind::Measurement, key);
        if (entry.has_value() &&
            !sameBytes(entry->payload(), payloadForKey(key))) {
          results[t] = 2;
          return;
        }
      }
      results[t] = 0;
    });
  for (auto& th : threads) th.join();
  for (int t = 0; t < kChildren; ++t) EXPECT_EQ(results[t], 0) << t;
  EXPECT_EQ(store->counters().corruptRejected, 0u);
}

}  // namespace
}  // namespace gcr::store
