// Affine dependence analysis over IR programs.
//
// The paper's transforms are justified dynamically elsewhere in this repo (the
// interpreter is the oracle); this analyzer proves the same facts statically.
// For every pair of references to a common array it decides, per common loop
// level, the dependence *distance* (sink iteration minus source iteration,
// when it is a bounded constant) or *direction* ('<', '=', '>', or '*'),
// using the classic pipeline on the Figure-5 subscript forms:
//
//   * GCD test — a linear diophantine subscript equation with no integer
//     solution proves independence (with unit coefficients this only fires
//     for constant-vs-constant subscripts, where it degenerates to exact
//     inequality over all N >= minN);
//   * Banerjee bounds test — the range of (sink subscript - source subscript)
//     over the two iteration domains must contain zero, else independent;
//   * distance extraction — same-variable dimensions give sink = source +
//     (c1 - c2); conflicting distances across dimensions prove independence.
//
// The answer is a three-value lattice:
//   Independent  — proven: no two instances touch the same element;
//   Dependent    — proven: a conflicting pair exists, with the reported
//                  distance/direction vector;
//   Unknown      — beyond the precise fragment (coupled subscripts, pinned
//                  border refs, cross-nest ranges); conservatively treated
//                  as dependent with '*' directions by every client.
//
// All comparisons use the definitely-for-all-N>=minN procedures of
// support/affine.hpp, so Independent/Dependent verdicts hold for every
// problem size at or above minN.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace gcr {

/// One array reference in its full loop context.
struct RefSite {
  int stmtId = -1;
  ArrayId array = -1;
  bool isWrite = false;
  const ArrayRef* ref = nullptr;      ///< borrowed from the program
  std::vector<const Loop*> stack;     ///< enclosing loops, outermost first
  /// Child chosen at each nesting level on the way to the statement: entry k
  /// is a child of the level-k context (program top for k = 0, stack[k-1]'s
  /// body otherwise); the last entry holds the statement itself.
  std::vector<const Child*> childPath;
  /// Active iteration range per depth: loop bounds intersected with every
  /// guard along the path (over-approximated when bounds are incomparable).
  std::vector<AffineN> actLo, actHi;
  int order = 0;                      ///< textual position of the statement
  std::string loc;                    ///< loop path, e.g. "i/j"
  std::string text;                   ///< printed reference, e.g. "A[i+1][j]"

  int depth() const { return static_cast<int>(stack.size()); }
};

/// All reference sites of a program in textual (execution) order, reads
/// before the write within each statement.
std::vector<RefSite> collectRefSites(const Program& p, std::int64_t minN = 16);

enum class DepAnswer { Independent, Dependent, Unknown };

enum class DepKind { Flow, Anti, Output, Input };

const char* depKindName(DepKind k);

/// Direction of sink iteration relative to source iteration at one common
/// loop level.
enum class Dir : std::int8_t {
  Lt = -1,   ///< sink iteration > source iteration ('<' in source order)
  Eq = 0,
  Gt = 1,    ///< sink iteration < source iteration
  Star = 2,  ///< unknown / any
};

char dirChar(Dir d);

struct Dependence {
  DepAnswer answer = DepAnswer::Independent;
  DepKind kind = DepKind::Input;
  int commonLevels = 0;
  /// Per common level (outermost first): sink iteration minus source
  /// iteration when it is a bounded constant.
  std::vector<std::optional<std::int64_t>> distance;
  /// Per common level: direction classification (consistent with distance).
  std::vector<Dir> direction;
  /// Per common level: the merged affine constraint on (sink iteration -
  /// source iteration) when some subscript dimension imposes one; a level
  /// without an entry is *unconstrained* — any iteration difference admits a
  /// conflicting pair (distinct from "constrained but imprecise").
  std::vector<std::optional<AffineN>> deltaN;

  /// True when every common level has a constant distance.
  bool hasDistanceVector() const;
  /// Render as e.g. "(1, 0)" or "(<, *)".
  std::string str() const;
};

/// Analyze the ordered pair (a textually earlier or equal, b later).  Both
/// must reference the same array.
Dependence analyzeDependence(const RefSite& a, const RefSite& b,
                             std::int64_t minN);

/// A surviving (non-independent) dependence between two program references.
struct ProgramDependence {
  const RefSite* src = nullptr;
  const RefSite* dst = nullptr;
  Dependence dep;
};

/// Whole-program dependence census.  `sites` must stay alive while the
/// summary's ProgramDependence pointers are used.
struct DependenceSummary {
  std::vector<RefSite> sites;
  std::vector<ProgramDependence> deps;  ///< Dependent or Unknown pairs
  std::uint64_t pairsAnalyzed = 0;      ///< same-array pairs tested
  std::uint64_t independent = 0;
  std::uint64_t dependent = 0;
  std::uint64_t unknown = 0;
};

/// Analyze every same-array reference pair with at least one write.  With
/// `includeInputDeps`, read-read pairs are analyzed too (reuse analysis);
/// legality clients leave it off.
DependenceSummary analyzeProgramDependences(const Program& p,
                                            std::int64_t minN = 16,
                                            bool includeInputDeps = false);

}  // namespace gcr
