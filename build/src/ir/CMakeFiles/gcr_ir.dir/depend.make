# Empty dependencies file for gcr_ir.
# This may be replaced when dependencies are built.
