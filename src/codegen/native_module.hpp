// dlopen wrapper over a compiled-plan shared object (bytes -> entry points).
//
// Artifacts live as bytes (in memory, in the persistent store); the loader
// materializes them to a private temp file, dlopen()s with
// RTLD_NOW | RTLD_LOCAL, unlinks the file immediately (the mapping keeps the
// inode alive), and resolves the native_abi.hpp symbols.  load() validates
// the embedded ABI version and reads the embedded parameter count, so a
// stale or foreign artifact fails loudly here instead of crashing inside
// generated code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "codegen/native_abi.hpp"

namespace gcr {

class NativeModule {
 public:
  /// Load a shared object from its bytes.  Returns null on any failure
  /// (unwritable temp, dlopen error, missing symbol, ABI mismatch) with the
  /// reason in *error.
  static std::unique_ptr<NativeModule> load(const std::string& soBytes,
                                            std::string* error);

  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  GcrNativeRunFn run() const { return run_; }
  GcrNativeTraceFn trace() const { return trace_; }
  std::int64_t paramCount() const { return paramCount_; }

 private:
  NativeModule() = default;

  void* handle_ = nullptr;
  GcrNativeRunFn run_ = nullptr;
  GcrNativeTraceFn trace_ = nullptr;
  std::int64_t paramCount_ = 0;
};

}  // namespace gcr
