#include "apps/tomcatv.hpp"

#include "ir/builder.hpp"

namespace gcr::apps {

Program tomcatvProgram(bool interchanged) {
  ProgramBuilder b(interchanged ? "Tomcatv" : "Tomcatv-noInterchange");
  const AffineN n = AffineN::N();
  const AffineN ext = n + AffineN(2);
  ArrayId x = b.array("X", {ext, ext});
  ArrayId y = b.array("Y", {ext, ext});
  ArrayId rx = b.array("RX", {ext, ext});
  ArrayId ry = b.array("RY", {ext, ext});
  ArrayId aa = b.array("AA", {ext, ext});
  ArrayId dd = b.array("DD", {ext, ext});
  ArrayId d = b.array("D", {ext, ext});

  // ---- Residuals from the mesh coordinates (9-point stencils).
  b.loop("i", 1, n, [&](IxVar i) {
    b.loop("j", 1, n, [&](IxVar j) {
      b.assign(b.ref(rx, {i, j}),
               {b.ref(x, {i, j + 1}), b.ref(x, {i, j - 1}), b.ref(x, {i + 1, j}),
                b.ref(x, {i - 1, j}), b.ref(y, {i, j})},
               "residual rx");
    });
    b.loop("j", 1, n, [&](IxVar j) {
      b.assign(b.ref(ry, {i, j}),
               {b.ref(y, {i, j + 1}), b.ref(y, {i, j - 1}), b.ref(y, {i + 1, j}),
                b.ref(y, {i - 1, j}), b.ref(x, {i, j})},
               "residual ry");
    });
  });

  // ---- Coefficients for the tridiagonal solve.
  b.loop("i", 1, n, [&](IxVar i) {
    b.loop("j", 1, n, [&](IxVar j) {
      b.assign(b.ref(aa, {i, j}),
               {b.ref(x, {i, j}), b.ref(x, {i, j - 1}), b.ref(y, {i, j}),
                b.ref(y, {i, j - 1})},
               "coeff aa");
    });
    b.loop("j", 1, n, [&](IxVar j) {
      b.assign(b.ref(dd, {i, j}), {b.ref(aa, {i, j}), b.ref(rx, {i, j}),
                                   b.ref(ry, {i, j})},
               "coeff dd");
    });
  });

  // ---- Tridiagonal solve.  The original iterates these nests with the
  // column index outermost; the hand-interchanged version (the paper's
  // evaluated one) puts rows outermost so all nests fuse.
  auto solverNest = [&](const char* label,
                        const std::function<void(IxVar, IxVar)>& body) {
    if (interchanged) {
      b.loop("i", 1, n, [&](IxVar i) {
        b.loop("j", 2, n, [&](IxVar j) { body(i, j); });
      });
    } else {
      b.loop("j", 2, n, [&](IxVar j) {
        b.loop("i", 1, n, [&](IxVar i) { body(i, j); });
      });
    }
    (void)label;
  };

  solverNest("forward elimination", [&](IxVar i, IxVar j) {
    b.assign(b.ref(d, {i, j}),
             {b.ref(d, {i, j - 1}), b.ref(aa, {i, j}), b.ref(dd, {i, j})},
             "forward elimination");
  });
  // Back substitutions run *backwards* (authentic downto recurrences) in
  // the hand-interchanged build; the pre-interchange variant models them
  // forward because reversed nests are outside the auto-interchange pass.
  auto backsub = [&](ArrayId dst, const char* label) {
    if (interchanged) {
      b.loop("i", 1, n, [&](IxVar i) {
        b.loopDown("j", 1, n - AffineN(1), [&](IxVar j) {
          b.assign(b.ref(dst, {i, j}),
                   {b.ref(dst, {i, j + 1}), b.ref(d, {i, j})}, label);
        });
      });
    } else {
      solverNest(label, [&](IxVar i, IxVar j) {
        b.assign(b.ref(dst, {i, j}), {b.ref(dst, {i, j - 1}), b.ref(d, {i, j})},
                 label);
      });
    }
  };
  backsub(rx, "back substitution rx");
  backsub(ry, "back substitution ry");

  // ---- Mesh update.
  b.loop("i", 1, n, [&](IxVar i) {
    b.loop("j", 1, n, [&](IxVar j) {
      b.assign(b.ref(x, {i, j}), {b.ref(x, {i, j}), b.ref(rx, {i, j})},
               "update x");
    });
    b.loop("j", 1, n, [&](IxVar j) {
      b.assign(b.ref(y, {i, j}), {b.ref(y, {i, j}), b.ref(ry, {i, j})},
               "update y");
    });
  });

  return b.take();
}

}  // namespace gcr::apps
