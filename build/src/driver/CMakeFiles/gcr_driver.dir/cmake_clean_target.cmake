file(REMOVE_RECURSE
  "libgcr_driver.a"
)
