// Access atoms: the per-reference summaries the fusion pass reasons with.
//
// Fusion works one loop level at a time (the paper applies the Figure 6
// algorithm "level by level from the outermost to the innermost").  At a
// given level d, a *unit* is one child of the enclosing context (the program
// top level or a fused loop's body): either a loop whose variable sits at
// depth d, or a non-loop statement.  Every array reference inside a unit is
// summarized by one atom describing, for each array dimension, how the
// subscript relates to the level-d variable:
//
//   LevelVar   subscript is var(d) + offset — the parametric dimension the
//              alignment computation solves over;
//   Enclosing  subscript is var(d') + offset for d' < d — the enclosing
//              variable has the same value for both units, so two such
//              subscripts denote the same element iff offsets are equal;
//   Inner      subscript uses a loop nested below level d — conservatively a
//              full range;
//   Constant   loop-invariant value (border elements such as A[1], A[N]).
//
// The atom also carries the iteration range of level d during which the
// reference is live (loop bounds intersected with any level-d guards) — this
// is what makes peeled/embedded members analyzable with the same machinery.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace gcr {

enum class SubKind { LevelVar, Enclosing, Inner, Constant };

struct DimAccess {
  SubKind kind = SubKind::Constant;
  AffineN offset;  ///< LevelVar/Enclosing: added to the variable;
                   ///< Constant: the value itself
  int depth = -1;  ///< Enclosing/Inner: the variable's depth
  /// Inner only: the subscript's value range (inner loop bounds + offset).
  AffineN rangeLo, rangeHi;
};

struct RefAtom {
  ArrayId array = -1;
  bool isWrite = false;
  int stmtId = -1;
  /// Active range of the level variable (for atoms inside loop units);
  /// meaningless for atoms of a non-loop unit (hasLevelRange == false).
  bool hasLevelRange = false;
  AffineN actLo, actHi;
  std::vector<DimAccess> dims;

  /// Index of the dimension subscripted by the level variable, or -1.
  int levelDim() const {
    for (std::size_t d = 0; d < dims.size(); ++d)
      if (dims[d].kind == SubKind::LevelVar) return static_cast<int>(d);
    return -1;
  }
};

/// Atoms of one unit (child of the fusion context) at level `level`.
/// For a loop unit, each contained statement contributes one atom per
/// reference with the active range = loop bounds ∩ level-`level` guards along
/// the path.  For an assign unit, atoms have no level range.
std::vector<RefAtom> collectAtoms(const Program& p, const Child& unit,
                                  int level, std::int64_t minN = 16);

/// Arrays touched by a unit (sorted, unique) — the "shares data" test of
/// GreedilyFuse.
std::vector<ArrayId> arraysTouched(const Program& p, const Child& unit);

bool shareData(const Program& p, const Child& a, const Child& b);

}  // namespace gcr
