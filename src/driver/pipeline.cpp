#include "driver/pipeline.hpp"

#include "fusion/legal.hpp"
#include "regroup/regroup.hpp"
#include "xform/distribute.hpp"
#include "xform/interchange.hpp"
#include "xform/unroll_split.hpp"

namespace gcr {

PipelineResult optimize(const Program& in, const PipelineOptions& opts) {
  PipelineResult result;
  Program p = in.clone();
  const std::int64_t minN = opts.fusionOptions.minN;

  // Legality verdicts are gathered *before* the pass runs; a refused request
  // is a note (the pass obeys the verdict), not a defect of the program.
  auto consult = [&](std::vector<Diagnostic> v) {
    if (!opts.checkLegality) return;
    for (Diagnostic& d : v) {
      if (d.severity != Severity::Note) {
        d.severity = Severity::Note;
        d.message = "refused: " + d.message;
      }
      result.diagnostics.push_back(std::move(d));
    }
  };

  if (opts.unrollSplit) {
    consult(checkUnrollSplitLegal(p, 8, 8, in.name));
    p = unrollSmallLoops(p, 8, &result.unrolledLoops);
    SplitResult split = splitConstantDims(p);
    p = std::move(split.program);
    result.arraysAfterSplit = static_cast<int>(p.arrays.size());
  }
  if (opts.orderLevels)
    orderLevelsForFusion(p, minN,
                         opts.checkLegality ? &result.diagnostics : nullptr,
                         in.name);
  if (opts.distribute) {
    consult(checkDistributeLegal(p, minN, in.name));
    p = distributeLoops(p, minN, &result.distributedLoops);
  }
  if (opts.fuse) {
    consult(checkProgramFusionLegal(p, minN, opts.fusionOptions.maxPeel,
                                    in.name));
    p = fuseProgramLevels(p, opts.fusionLevels, opts.fusionOptions,
                          &result.fusionReport);
  }
  if (opts.regroup) {
    result.regrouping =
        Regrouping::analyze(p, opts.regroupOptions, &result.regroupReport);
    std::vector<Diagnostic> verdict =
        opts.checkLegality
            ? checkRegroupLegal(p, result.regrouping, minN, in.name)
            : std::vector<Diagnostic>{};
    if (anyErrors(verdict)) {
      // Failed the bijectivity certificate: abandon the regrouping (the
      // contiguous layout is always valid) and keep the errors on record.
      appendDiagnostics(result.diagnostics, verdict);
      result.regrouped = false;
    } else {
      consult(std::move(verdict));
      result.regrouped = true;
    }
  }
  result.program = std::move(p);
  return result;
}

ProgramVersion makeNoOpt(const Program& in) {
  return ProgramVersion{"NoOpt", in.clone(),
                        [](const Program& p, std::int64_t n) {
                          return contiguousLayout(p, n);
                        }};
}

ProgramVersion makeSgiLike(const Program& in, std::int64_t padBytes) {
  // Local optimization: unroll/split small dimensions (any production
  // compiler does), then fuse only within nests (minLevel = 1).
  PipelineOptions opts;
  opts.distribute = false;
  opts.fusionOptions.minLevel = 1;
  opts.regroup = false;
  PipelineResult r = optimize(in, opts);
  return ProgramVersion{"SGI-like", std::move(r.program),
                        [padBytes](const Program& p, std::int64_t n) {
                          return paddedLayout(p, n, padBytes);
                        }};
}

ProgramVersion makeFused(const Program& in, int levels, FusionOptions fopts) {
  PipelineOptions opts;
  opts.fusionLevels = levels;
  opts.fusionOptions = fopts;
  opts.regroup = false;
  PipelineResult r = optimize(in, opts);
  return ProgramVersion{"fused(" + std::to_string(levels) + ")",
                        std::move(r.program),
                        [](const Program& p, std::int64_t n) {
                          return contiguousLayout(p, n);
                        }};
}

ProgramVersion makeFusedRegrouped(const Program& in, int levels,
                                  FusionOptions fopts, RegroupOptions ropts) {
  PipelineOptions opts;
  opts.fusionLevels = levels;
  opts.fusionOptions = fopts;
  opts.regroupOptions = ropts;
  PipelineResult r = optimize(in, opts);
  // The layout factory owns the analysis result by value.
  Regrouping rg = std::move(r.regrouping);
  return ProgramVersion{"fused+regrouped", std::move(r.program),
                        [rg](const Program& p, std::int64_t n) {
                          return rg.layout(p, n);
                        }};
}

ProgramVersion makeRegroupedOnly(const Program& in, RegroupOptions ropts) {
  PipelineOptions opts;
  opts.fuse = false;
  opts.distribute = false;
  opts.regroupOptions = ropts;
  PipelineResult r = optimize(in, opts);
  Regrouping rg = std::move(r.regrouping);
  return ProgramVersion{"regrouped-only", std::move(r.program),
                        [rg](const Program& p, std::int64_t n) {
                          return rg.layout(p, n);
                        }};
}

}  // namespace gcr
