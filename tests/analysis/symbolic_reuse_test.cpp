// The symbolic pass must reproduce the numeric estimator wherever it claims
// a formula: evaluating a fully symbolic profile at any n >= minN with
// timeSteps == 1 yields estimateReuseProfile's histogram EXACTLY (same
// candidate scan, same min selection), and the closed-form degree kills the
// n/2n evadable sampling seam.
#include "analysis/symbolic_reuse.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/static_reuse.hpp"
#include "apps/registry.hpp"
#include "common/random_program.hpp"
#include "interp/interp.hpp"
#include "interp/layout.hpp"
#include "ir/builder.hpp"
#include "locality/reuse_distance.hpp"

namespace gcr {
namespace {

void expectExactMatch(const Program& p, const SymbolicReuseProfile& sym,
                      std::int64_t n) {
  const StaticReuseEstimate num = estimateReuseProfile(p, {.n = n});
  const SymbolicEvaluation ev = evaluateSymbolicProfile(sym, n);
  EXPECT_EQ(ev.accesses, num.accesses) << p.name << " n=" << n;
  EXPECT_EQ(ev.cold, num.cold) << p.name << " n=" << n;
  EXPECT_EQ(ev.totalReuses, num.totalReuses) << p.name << " n=" << n;
  const int hi = std::max(ev.histogram.highestNonEmptyBin(),
                          num.histogram.highestNonEmptyBin());
  for (int b = 0; b <= hi; ++b)
    EXPECT_EQ(ev.histogram.binCount(b), num.histogram.binCount(b))
        << p.name << " n=" << n << " bin=" << b;
  // Per-site distances too: site order matches collectRefSites().
  ASSERT_EQ(sym.perSite.size(), num.perSite.size());
  for (std::size_t i = 0; i < sym.perSite.size(); ++i) {
    const SymbolicSiteProfile& s = sym.perSite[i];
    if (!s.distance.valid()) continue;  // cold
    EXPECT_EQ(static_cast<std::uint64_t>(std::max<std::int64_t>(
                  0, s.distance.eval(n))),
              num.perSite[i].distance)
        << p.name << " site " << i << " (" << sym.sites[i].text << ")";
  }
}

TEST(SymbolicReuse, RegistryAppsAnalyzeSymbolically) {
  for (const apps::AppInfo& app : apps::evaluationApps()) {
    const Program p = app.build();
    const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
    EXPECT_TRUE(sym.fullySymbolic())
        << app.name << " bailed sites: " << sym.bailedSites();
    for (const std::int64_t n : {32, 64, 96, 128})
      expectExactMatch(p, sym, n);
  }
}

TEST(SymbolicReuse, ScanSiteHasConstantDegree) {
  ProgramBuilder b("scan");
  const ArrayId A = b.array("A", {AffineN::N()});
  b.loop("i", 1, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(A, {i}), {b.ref(A, {i - 1})}); });
  const Program p = b.take();
  const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
  ASSERT_EQ(sym.perSite.size(), 2u);
  const SymbolicSiteProfile& read = sym.perSite[0];
  EXPECT_EQ(read.cls, ReuseClass::LoopCarried);
  ASSERT_TRUE(read.distance.valid());
  ASSERT_TRUE(read.degree.has_value());
  EXPECT_EQ(*read.degree, 0);  // carried distance is constant in N
  EXPECT_FALSE(read.evadable);
}

TEST(SymbolicReuse, CrossLoopDistanceGrowsLinearly) {
  ProgramBuilder b("crossloop");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(A, {i}), {}); });
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(B, {i}), {b.ref(A, {i})}); });
  const Program p = b.take();
  const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
  bool sawCrossUnit = false;
  for (const SymbolicSiteProfile& e : sym.perSite)
    if (e.cls == ReuseClass::CrossUnit) {
      sawCrossUnit = true;
      ASSERT_TRUE(e.degree.has_value());
      EXPECT_EQ(*e.degree, 1);
      EXPECT_TRUE(e.evadable);
    }
  EXPECT_TRUE(sawCrossUnit);
}

TEST(SymbolicReuse, MissRateCurveIsMonotoneInCapacity) {
  const Program p = apps::buildApp("Swim");
  const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
  for (const std::int64_t n : {64, 256, 1024}) {
    double prev = 1.0;
    for (std::uint64_t c = 1; c <= (1ull << 24); c <<= 2) {
      const double miss = symbolicMissRate(sym, c, n);
      EXPECT_LE(miss, prev + 1e-12) << "n=" << n << " c=" << c;
      EXPECT_GE(miss, 0.0);
      prev = miss;
    }
    // A cache big enough for every distance misses only on cold.
    EXPECT_EQ(symbolicMissRate(sym, 1ull << 62, n), 0.0);
  }
}

TEST(SymbolicReuse, TimeStepsScaleMassAndAddColdRetouch) {
  const Program p = apps::buildApp("ADI");
  const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
  ASSERT_TRUE(sym.fullySymbolic());
  const std::int64_t n = 64;
  const SymbolicEvaluation e1 = evaluateSymbolicProfile(sym, n, 1);
  const SymbolicEvaluation e4 = evaluateSymbolicProfile(sym, n, 4);
  EXPECT_EQ(e4.accesses, 4 * e1.accesses);
  EXPECT_EQ(e4.cold, e1.cold);  // first touches happen once
  // Every access that is not a first touch is a reuse.
  EXPECT_EQ(e4.totalReuses + e4.cold, e4.accesses);
  ASSERT_TRUE(sym.footprint.valid());
  EXPECT_GT(sym.footprint.eval(n), 0);
}

TEST(SymbolicReuse, FootprintMatchesWholeProgramSweep) {
  // Two arrays of extent N each, both fully touched: footprint ~ 2N.
  ProgramBuilder b("twosweeps");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(A, {i}), {}); });
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(B, {i}), {}); });
  const Program p = b.take();
  const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
  EXPECT_EQ(sym.footprint.eval(100), 200);
  EXPECT_EQ(sym.footprint.degreeInN().value_or(-1), 1);
}

TEST(SymbolicReuse, FuzzExactAgainstNumericEstimator) {
  // Random affine programs are guard-comparable and constant-delta, so the
  // symbolic pass must go formula-only and match the numeric estimator bit
  // for bit at every size.
  int fullySymbolic = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    testing::RandomProgramOptions opts;
    opts.allowTwoDim = true;
    const Program p = testing::randomProgram(seed, opts);
    const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
    if (!sym.fullySymbolic()) continue;
    ++fullySymbolic;
    for (const std::int64_t n : {32, 64})
      expectExactMatch(p, sym, n);
  }
  EXPECT_GE(fullySymbolic, 15);  // the corpus is overwhelmingly affine
}

TEST(SymbolicReuse, HybridEqualsPureWhenFullySymbolic) {
  const Program p = apps::buildApp("Tomcatv");
  const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
  ASSERT_TRUE(sym.fullySymbolic());
  const std::int64_t n = 48;
  const DataLayout l = contiguousLayout(p, n);
  const SymbolicEvaluation pure = evaluateSymbolicProfile(sym, n);
  const SymbolicEvaluation hyb = evaluateHybridProfile(sym, p, l, n);
  EXPECT_EQ(pure.accesses, hyb.accesses);
  EXPECT_EQ(pure.totalReuses, hyb.totalReuses);
  EXPECT_EQ(pure.bailedAccesses, 0u);
  EXPECT_EQ(hyb.bailedAccesses, 0u);
}

TEST(SymbolicReuse, AgreementWithDynamicProfileWithinGate) {
  // The end-to-end gate the CI job enforces: symbolic CDF vs measured CDF,
  // geomean error over the registry apps <= 0.10.
  double logSum = 0.0;
  int count = 0;
  for (const apps::AppInfo& app : apps::evaluationApps()) {
    const Program p = app.build();
    const SymbolicReuseProfile sym = analyzeSymbolicReuse(p);
    const std::int64_t n = 64;
    const SymbolicEvaluation ev = evaluateSymbolicProfile(sym, n);
    const DataLayout l = contiguousLayout(p, n);
    ReuseDistanceSink sink(8);
    execute(p, l, {.n = n}, &sink);
    const ReuseProfile measured = sink.takeProfile();
    const ProfileComparison c =
        compareHistograms(ev.histogram, measured.histogram);
    EXPECT_LT(c.avgCdfError, 0.25) << app.name;
    logSum += std::log(std::max(c.avgCdfError, 1e-6));
    ++count;
  }
  EXPECT_LE(std::exp(logSum / count), 0.10);
}

}  // namespace
}  // namespace gcr
