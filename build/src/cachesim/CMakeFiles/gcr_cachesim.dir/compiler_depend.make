# Empty compiler generated dependencies file for gcr_cachesim.
# This may be replaced when dependencies are built.
