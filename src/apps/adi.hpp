// ADI: the paper's self-written kernel — "8 loops in 4 loop nests" over
// 3 arrays, "with separate loops processing boundary conditions"
// (Figure 9: input 2K x 2K, levels 1-2).
//
// Alternating-direction-implicit sweep structure: a boundary loop, a forward
// elimination sweep (two inner loops), another boundary loop, and a
// back-substitution sweep (two inner loops).  All nests iterate rows
// outermost, so global fusion can merge the whole time step; the boundary
// loops exercise statement embedding and alignment.
#pragma once

#include "ir/ir.hpp"

namespace gcr::apps {

Program adiProgram();

}  // namespace gcr::apps
