#include "locality/sampled_reuse.hpp"

#include <algorithm>
#include <cmath>

#include "support/prng.hpp"

namespace gcr {

SampledReuseTracker::SampledReuseTracker(double rate)
    : rate_(std::clamp(rate, 0x1.0p-32, 1.0)),
      inverseRate_(1.0 / rate_),
      exact_mode_(rate_ >= 1.0),
      countScale_(static_cast<std::uint64_t>(std::llround(inverseRate_))) {
  GCR_CHECK(rate > 0.0, "sampleRate must be in (0, 1]");
  // threshold = rate * 2^64, computed via ldexp to keep full precision.
  // exact_mode_ bypasses the filter entirely, so the (unrepresentable)
  // rate-1 threshold never gets used.
  threshold_ = exact_mode_ ? ~std::uint64_t{0}
                           : static_cast<std::uint64_t>(std::ldexp(rate_, 64));
}

bool SampledReuseTracker::isSampled(std::int64_t addr) const {
  if (exact_mode_) return true;
  return mix64(static_cast<std::uint64_t>(addr)) < threshold_;
}

std::uint64_t SampledReuseTracker::access(std::int64_t addr) {
  ++accesses_;
  if (!isSampled(addr)) return kNotSampled;
  const std::uint64_t d = exact_.access(addr);
  if (exact_mode_ || d == kCold) return d;
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(d) * inverseRate_));
}

void SampledReuseTracker::reserve(std::uint64_t expectedAccesses,
                                  std::uint64_t expectedDistinctData) {
  const auto scale = [&](std::uint64_t v) {
    return exact_mode_ ? v
                       : static_cast<std::uint64_t>(
                             static_cast<double>(v) * rate_) +
                             1;
  };
  exact_.reserve(scale(expectedAccesses),
                 expectedDistinctData > 0 ? scale(expectedDistinctData) : 0);
}

SampledReuseSink::SampledReuseSink(std::int64_t granularity, double rate)
    : granularity_(granularity), tracker_(rate) {
  GCR_CHECK(granularity_ > 0, "granularity must be positive");
}

void SampledReuseSink::touch(std::int64_t addr) {
  const std::uint64_t d = tracker_.access(addr / granularity_);
  if (d == SampledReuseTracker::kNotSampled) return;
  profile_.histogram.add(d, tracker_.countScale());
}

void SampledReuseSink::onInstr(int, std::span<const std::int64_t> reads,
                               std::int64_t write) {
  for (std::int64_t r : reads) touch(r);
  touch(write);
}

void SampledReuseSink::onBlock(const InstrBlock& b) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    for (std::int64_t r : b.reads(i)) touch(r);
    touch(b.writes[i]);
  }
}

void SampledReuseSink::reserve(std::uint64_t expectedAccesses,
                               std::uint64_t expectedDistinctBytes) {
  tracker_.reserve(expectedAccesses,
                   static_cast<std::uint64_t>(expectedDistinctBytes) /
                       static_cast<std::uint64_t>(granularity_));
}

ReuseProfile SampledReuseSink::takeProfile() {
  profile_.accesses = tracker_.accesses();
  profile_.distinctData = static_cast<std::uint64_t>(std::llround(
      static_cast<double>(tracker_.distinctSampled()) / tracker_.rate()));
  return std::move(profile_);
}

ReuseProfile profileAddressesSampled(const std::vector<std::int64_t>& addrs,
                                     std::int64_t granularity, double rate) {
  SampledReuseSink sink(granularity, rate);
  sink.reserve(addrs.size());
  for (std::int64_t a : addrs) sink.onInstr(0, {}, a);
  return sink.takeProfile();
}

}  // namespace gcr
