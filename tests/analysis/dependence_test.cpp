#include "analysis/dependence.hpp"

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "ir/builder.hpp"

namespace gcr {
namespace {

Program scan1d() {
  ProgramBuilder b("scan");
  const ArrayId A = b.array("A", {AffineN::N()});
  b.loop("i", 1, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(A, {i}), {b.ref(A, {i - 1})}); });
  return b.take();
}

TEST(Dependence, CollectsSitesInExecutionOrder) {
  Program p = scan1d();
  const std::vector<RefSite> sites = collectRefSites(p);
  ASSERT_EQ(sites.size(), 2u);
  // Reads come before the write of the same statement.
  EXPECT_FALSE(sites[0].isWrite);
  EXPECT_TRUE(sites[1].isWrite);
  EXPECT_EQ(sites[0].depth(), 1);
  EXPECT_EQ(sites[0].text, "A[i-1]");
  EXPECT_EQ(sites[1].text, "A[i]");
}

TEST(Dependence, FlowDistanceOne) {
  Program p = scan1d();
  const std::vector<RefSite> sites = collectRefSites(p);
  // write A[i] (earlier iteration) -> read A[i-1] (later iteration).
  const Dependence d = analyzeDependence(sites[1], sites[0], 16);
  EXPECT_EQ(d.answer, DepAnswer::Dependent);
  ASSERT_EQ(d.commonLevels, 1);
  ASSERT_TRUE(d.hasDistanceVector());
  EXPECT_EQ(d.distance[0], 1);
  EXPECT_EQ(d.direction[0], Dir::Lt);
}

TEST(Dependence, IndependentConstantSubscripts) {
  ProgramBuilder b("consts");
  const ArrayId A = b.array("A", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1, [&](IxVar) {
    b.assign(b.ref(A, {cst(0)}), {b.ref(A, {cst(1)})});
  });
  Program p = b.take();
  const std::vector<RefSite> sites = collectRefSites(p);
  const Dependence d = analyzeDependence(sites[1], sites[0], 16);
  EXPECT_EQ(d.answer, DepAnswer::Independent);
}

TEST(Dependence, IndependentPinnedOutsideRange) {
  // Loop writes A[2..N-3]; a later loop reads only A[0].
  ProgramBuilder b("pinned");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId C = b.array("C", {AffineN::N()});
  b.loop("i", 2, AffineN::N() - 3,
         [&](IxVar i) { b.assign(b.ref(A, {i}), {}); });
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(C, {i}), {b.ref(A, {cst(0)})}); });
  Program p = b.take();
  const std::vector<RefSite> sites = collectRefSites(p);
  ASSERT_EQ(sites.size(), 3u);
  const Dependence d = analyzeDependence(sites[0], sites[1], 16);
  EXPECT_EQ(d.answer, DepAnswer::Independent);
}

TEST(Dependence, UnknownForTransposedSubscripts) {
  // A(i,j) = A(j,i): each dimension pairs different loop variables — beyond
  // the per-dimension test, so the lattice answer must be Unknown, never a
  // false Independent.
  ProgramBuilder b("transpose");
  const ArrayId A = b.array("A", {AffineN::N(), AffineN::N()});
  b.loop2("i", 0, AffineN::N() - 1, "j", 0, AffineN::N() - 1,
          [&](IxVar i, IxVar j) {
            b.assign(b.ref(A, {i, j}), {b.ref(A, {j, i})});
          });
  Program p = b.take();
  const std::vector<RefSite> sites = collectRefSites(p);
  const Dependence d = analyzeDependence(sites[1], sites[0], 16);
  EXPECT_EQ(d.answer, DepAnswer::Unknown);
}

TEST(Dependence, AntiDiagonalDistanceVector) {
  // A(i,j) = A(i-1,j+1): distance (1,-1), direction (<,>).
  ProgramBuilder b("antidiag");
  const ArrayId A = b.array("A", {AffineN::N(), AffineN::N()});
  b.loop2("i", 1, AffineN::N() - 2, "j", 1, AffineN::N() - 2,
          [&](IxVar i, IxVar j) {
            b.assign(b.ref(A, {i, j}), {b.ref(A, {i - 1, j + 1})});
          });
  Program p = b.take();
  const std::vector<RefSite> sites = collectRefSites(p);
  const Dependence d = analyzeDependence(sites[1], sites[0], 16);
  EXPECT_EQ(d.answer, DepAnswer::Dependent);
  ASSERT_TRUE(d.hasDistanceVector());
  EXPECT_EQ(d.distance[0], 1);
  EXPECT_EQ(d.distance[1], -1);
  EXPECT_EQ(d.direction[0], Dir::Lt);
  EXPECT_EQ(d.direction[1], Dir::Gt);
  EXPECT_EQ(d.str(), "(1, -1)");
}

TEST(Dependence, OutputDependenceSameIteration) {
  ProgramBuilder b("wars");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1, [&](IxVar i) {
    b.assign(b.ref(A, {i}), {b.ref(B, {i})});
    b.assign(b.ref(A, {i}), {b.ref(B, {i})});
  });
  Program p = b.take();
  const DependenceSummary s = analyzeProgramDependences(p);
  ASSERT_EQ(s.deps.size(), 1u);  // the write/write pair (read-read skipped)
  EXPECT_EQ(s.deps[0].dep.kind, DepKind::Output);
  ASSERT_TRUE(s.deps[0].dep.hasDistanceVector());
  EXPECT_EQ(s.deps[0].dep.distance[0], 0);
}

TEST(Dependence, KindsFollowAccessOrder) {
  // B[i] read then B[i] written by a later statement: anti dependence.
  ProgramBuilder b("anti");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1, [&](IxVar i) {
    b.assign(b.ref(A, {i}), {b.ref(B, {i})});
    b.assign(b.ref(B, {i}), {});
  });
  Program p = b.take();
  const DependenceSummary s = analyzeProgramDependences(p);
  ASSERT_EQ(s.deps.size(), 1u);
  EXPECT_EQ(s.deps[0].dep.kind, DepKind::Anti);
}

TEST(Dependence, CensusIsConsistentOnApps) {
  for (const char* name : {"ADI", "Swim", "Tomcatv", "SP"}) {
    const Program p = apps::buildApp(name);
    const DependenceSummary s = analyzeProgramDependences(p);
    EXPECT_GT(s.pairsAnalyzed, 0u) << name;
    EXPECT_EQ(s.pairsAnalyzed, s.independent + s.dependent + s.unknown)
        << name;
    // Every reported dependence carries the lattice answer it was filed
    // under, and Dependent entries have usable vectors.
    std::size_t dependent = 0, unknown = 0;
    for (const ProgramDependence& pd : s.deps) {
      if (pd.dep.answer == DepAnswer::Dependent) {
        ++dependent;
        EXPECT_EQ(static_cast<int>(pd.dep.distance.size()),
                  pd.dep.commonLevels);
      } else {
        EXPECT_EQ(pd.dep.answer, DepAnswer::Unknown);
        ++unknown;
      }
    }
    EXPECT_EQ(dependent, s.dependent) << name;
    EXPECT_EQ(unknown, s.unknown) << name;
  }
}

TEST(Dependence, InputReuseOnlyOnRequest) {
  ProgramBuilder b("reads");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  const ArrayId C = b.array("C", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1, [&](IxVar i) {
    b.assign(b.ref(B, {i}), {b.ref(A, {i})});
    b.assign(b.ref(C, {i}), {b.ref(A, {i})});
  });
  Program p = b.take();
  EXPECT_TRUE(analyzeProgramDependences(p).deps.empty());
  const DependenceSummary s = analyzeProgramDependences(p, 16, true);
  ASSERT_EQ(s.deps.size(), 1u);
  EXPECT_EQ(s.deps[0].dep.kind, DepKind::Input);
}

}  // namespace
}  // namespace gcr
