# Empty dependencies file for bench_fig3_reuse_distance.
# This may be replaced when dependencies are built.
