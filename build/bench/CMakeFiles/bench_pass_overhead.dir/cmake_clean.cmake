file(REMOVE_RECURSE
  "CMakeFiles/bench_pass_overhead.dir/bench_pass_overhead.cpp.o"
  "CMakeFiles/bench_pass_overhead.dir/bench_pass_overhead.cpp.o.d"
  "bench_pass_overhead"
  "bench_pass_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pass_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
