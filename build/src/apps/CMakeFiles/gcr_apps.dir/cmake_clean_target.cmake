file(REMOVE_RECURSE
  "libgcr_apps.a"
)
