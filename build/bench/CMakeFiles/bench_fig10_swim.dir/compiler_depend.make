# Empty compiler generated dependencies file for bench_fig10_swim.
# This may be replaced when dependencies are built.
