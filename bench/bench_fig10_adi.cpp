// Figure 10, lower-left panel: ADI — original / +computation fusion /
// +data regrouping on Origin2000.
//
// Paper: ADI (2K x 2K, the largest input) enjoyed the highest improvement:
// L1 misses -39%, L2 -44%, TLB -56%, execution time -57% (speedup 2.33).
#include "apps/registry.hpp"
#include "bench_util.hpp"

int main() {
  using namespace gcr;
  bench::printHeader("Figure 10: ADI — effect of transformations",
                     "orig / +fusion / +regrouping; paper: -39% L1, -44% L2, "
                     "-56% TLB, 2.33x speedup at 2Kx2K");

  Engine& engine = bench::sessionEngine();
  Program p = apps::buildApp("ADI");
  const std::int64_t n = bench::fullSize() ? 2048 : 1024;
  const MachineConfig machine = MachineConfig::origin2000();

  std::vector<bench::VersionRow> rows = bench::measureVersions(
      {"original", "+ computation fusion", "+ data regrouping"},
      [&] {
        std::vector<MeasureTask> t;
        t.push_back({.version = engine.version(p, Strategy::NoOpt),
                     .n = n,
                     .machine = machine});
        t.push_back({.version = engine.version(p, Strategy::Fused),
                     .n = n,
                     .machine = machine});
        t.push_back({.version = engine.version(p, Strategy::FusedRegrouped),
                     .n = n,
                     .machine = machine});
        return t;
      }());
  bench::printFig10Panel("ADI", n, machine, rows);
  bench::writeVersionRowsJson("fig10_adi", "ADI", n, machine, rows);
  bench::printThroughput(rows);
  bench::printEngineStats();
  return 0;
}
