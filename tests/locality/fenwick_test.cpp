#include "locality/fenwick.hpp"

#include <gtest/gtest.h>

#include "support/prng.hpp"

namespace gcr {
namespace {

TEST(Fenwick, BasicAddAndPrefix) {
  FenwickTree t;
  t.add(3, 1);
  t.add(7, 1);
  EXPECT_EQ(t.prefixSum(2), 0);
  EXPECT_EQ(t.prefixSum(3), 1);
  EXPECT_EQ(t.prefixSum(7), 2);
  EXPECT_EQ(t.prefixSum(1000000), 2);  // beyond capacity saturates
}

TEST(Fenwick, RangeSum) {
  FenwickTree t;
  for (std::uint64_t i = 0; i < 10; ++i) t.add(i, 1);
  EXPECT_EQ(t.rangeSum(2, 5), 4);
  EXPECT_EQ(t.rangeSum(0, 9), 10);
  EXPECT_EQ(t.rangeSum(5, 4), 0);  // empty range
}

TEST(Fenwick, RemoveMarks) {
  FenwickTree t;
  t.add(4, 1);
  t.add(4, -1);
  EXPECT_EQ(t.prefixSum(10), 0);
}

TEST(Fenwick, GrowthPreservesMarks) {
  FenwickTree t;
  t.add(10, 1);
  t.add(100000, 1);  // triggers growth
  EXPECT_EQ(t.prefixSum(10), 1);
  EXPECT_EQ(t.prefixSum(100000), 2);
}

TEST(Fenwick, MatchesNaiveUnderRandomOps) {
  FenwickTree t;
  std::vector<int> naive(2000, 0);
  SplitMix64 rng(3);
  for (int op = 0; op < 5000; ++op) {
    const auto i = static_cast<std::uint64_t>(rng.nextBelow(2000));
    if (naive[i] == 0) {
      t.add(i, 1);
      naive[i] = 1;
    } else {
      t.add(i, -1);
      naive[i] = 0;
    }
    if (op % 100 == 0) {
      const auto lo = static_cast<std::uint64_t>(rng.nextBelow(2000));
      const auto hi = lo + rng.nextBelow(2000 - lo);
      std::int64_t expect = 0;
      for (std::uint64_t k = lo; k <= hi; ++k) expect += naive[k];
      EXPECT_EQ(t.rangeSum(lo, hi), expect);
    }
  }
}

}  // namespace
}  // namespace gcr
