# Empty dependencies file for bench_fig9_apps.
# This may be replaced when dependencies are built.
