// The multicore_profile artifact through gcr::Engine: memoized like every
// other artifact, coherent with the direct analyzeMulticore() primitive,
// reachable through the unified submit(Request), persisted to the disk
// store, and keyed by (program, layout, n, timeSteps, topology, cost).
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "../common/temp_dir.hpp"
#include "engine/engine.hpp"
#include "interp/plan.hpp"
#include "locality/multicore.hpp"
#include "store/codec.hpp"

namespace gcr {
namespace {

CacheTopology smallTopo(int cores) {
  // Scaled-down geometry keeps the simulated footprints interesting at
  // test-sized n.
  return CacheTopology::symmetric(cores).scaledDown(16);
}

TEST(EngineMulticore, WarmProfileIsByteIdenticalToCold) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  ProgramVersion v = engine.version(p, Strategy::Fused);

  const MulticoreProfile cold = engine.multicoreProfile(v, 20, smallTopo(4));
  const MulticoreProfile warm = engine.multicoreProfile(v, 20, smallTopo(4));
  // Cached values replay verbatim, wallSeconds included.
  EXPECT_EQ(store::encodeMulticoreProfile(cold),
            store::encodeMulticoreProfile(warm));
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.multicore.misses, 1u);
  EXPECT_EQ(s.multicore.hits, 1u);
}

TEST(EngineMulticore, EngineAgreesWithDirectAnalysis) {
  Engine engine;
  Program p = apps::buildApp("Swim");
  ProgramVersion v = engine.version(p, Strategy::FusedRegrouped);
  const CacheTopology topo = smallTopo(2);

  MulticoreProfile viaEngine = engine.multicoreProfile(v, 20, topo);

  DataLayout layout = v.layoutAt(20);
  const PlanCompileResult c = compilePlan(v.program, layout, {.n = 20});
  ASSERT_TRUE(c.ok()) << c.reason;
  MulticoreProfile direct = analyzeMulticore(*c.plan, topo);

  viaEngine.wallSeconds = direct.wallSeconds = 0.0;
  EXPECT_EQ(store::encodeMulticoreProfile(viaEngine),
            store::encodeMulticoreProfile(direct));
}

TEST(EngineMulticore, DistinctTopologiesAndCostsAreDistinctKeys) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  ProgramVersion v = engine.version(p, Strategy::NoOpt);

  (void)engine.multicoreProfile(v, 16, smallTopo(2));
  (void)engine.multicoreProfile(v, 16, smallTopo(4));  // different cores
  CacheTopology cyclic = smallTopo(2);
  cyclic.schedule = ParallelSchedule::Cyclic;
  (void)engine.multicoreProfile(v, 16, cyclic);  // different schedule
  MulticoreCostModel cost;
  cost.memoryCost = 120.0;
  (void)engine.multicoreProfile(v, 16, smallTopo(2), 1, cost);  // cost model
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.multicore.misses, 4u);
  EXPECT_EQ(s.multicore.hits, 0u);
}

TEST(EngineMulticore, SubmitResolvesToSyncResultAndSharesTheCache) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  ProgramVersion v = engine.version(p, Strategy::Fused);

  Future<Reply> f =
      engine.submit(MulticoreTask{v.clone(), 18, smallTopo(2), 1, {}});
  const MulticoreProfile async = replyAs<MulticoreProfile>(f.get());
  const MulticoreProfile sync = engine.multicoreProfile(v, 18, smallTopo(2));
  EXPECT_EQ(store::encodeMulticoreProfile(async),
            store::encodeMulticoreProfile(sync));
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.multicore.misses, 1u);
  EXPECT_EQ(s.multicore.hits + s.inflightCoalesced, 1u);
}

TEST(EngineMulticore, RequestKindMapsToTheSharedArtifactEnum) {
  Program p = apps::buildApp("ADI");
  Engine engine;
  ProgramVersion v = engine.version(p, Strategy::NoOpt);
  const Request req = MulticoreTask{v.clone(), 16, smallTopo(2), 1, {}};
  EXPECT_EQ(requestKind(req), store::ArtifactKind::MulticoreProfile);

  // replyAs enforces the tag: asking a multicore reply for a Measurement
  // throws instead of mis-reading the variant.
  Future<Reply> f = engine.submit(MulticoreTask{v.clone(), 16, smallTopo(2),
                                                1, {}});
  EXPECT_THROW((void)replyAs<Measurement>(f.get()), Error);
  EXPECT_NO_THROW((void)replyAs<MulticoreProfile>(f.get()));
}

TEST(EngineMulticore, PersistsAcrossEngines) {
  testing::ScopedTempDir dir("gcr-engine-multicore");
  Program p = apps::buildApp("Tomcatv");

  std::vector<std::uint8_t> first;
  {
    Engine::Options opts;
    opts.withCacheDir(dir.path()).withStoreFsync(false);
    Engine warm(opts);
    ProgramVersion v = warm.version(p, Strategy::Fused);
    first = store::encodeMulticoreProfile(
        warm.multicoreProfile(v, 20, smallTopo(4)));
    EXPECT_GT(warm.stats().store.puts, 0u);
  }

  Engine::Options opts;
  opts.withCacheDir(dir.path()).withStoreFsync(false);
  Engine cold(opts);
  ProgramVersion v = cold.version(p, Strategy::Fused);
  const std::vector<std::uint8_t> replay = store::encodeMulticoreProfile(
      cold.multicoreProfile(v, 20, smallTopo(4)));
  EXPECT_EQ(replay, first);
  const Engine::Stats s = cold.stats();
  EXPECT_EQ(s.multicore.misses, 1u);  // in-memory miss, served from disk
  EXPECT_GT(s.store.hits, 0u);
  EXPECT_EQ(s.store.corruptRejected, 0u);
}

}  // namespace
}  // namespace gcr
