// Native lowering of compiled access plans: the plan -> C translation unit
// emitter behind the native execution tier (native_exec.hpp).
//
// The plan interpreter (interp/plan.cpp) already reduces every address
// stream to strength-reduced recurrences over guard-free segments, but it
// still *interprets* the segment descriptors: per trip it walks a HotStmt
// vector, bounces every address through memory, and re-dispatches per read.
// This emitter removes that last interpretive layer by lowering the plan's
// STRUCTURE to straight-line C — each segment becomes a counted loop whose
// body is the fully unrolled statement sequence, each reference a named
// local advanced by `addr += step` — and leaving every NUMERIC value (loop
// bounds, segment boundaries, residual guard ranges, address bases and
// strides) in a runtime parameter table.  The host compiles the emitted
// unit once per plan *structure* and re-parameterizes it per problem size:
// `n` and `steps` are runtime arguments (see native_abi.hpp), so one shared
// object serves a whole fig9/fig10 size sweep — unlike emit_c.hpp, whose
// EmitOptions bake N into the text for human inspection.
//
// Bit-identical semantics to both other engines is the contract: same
// memory image, same instruction count, same instruction stream (delivered
// through the block callback), enforced by the three-way differential suite
// in tests/codegen/native_exec_test.cpp.
//
// The emitted text is a pure function of the plan structure (statement
// seeds/ids included, textual names excluded), so hashing the text yields
// the artifact's content address: structurally identical plans — across
// problem sizes, time-step counts, or renamed programs — share one
// compiled artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/plan.hpp"

namespace gcr {

/// An emitted native translation unit for one plan structure.
struct NativeSource {
  std::string code;         ///< self-contained C11, symbols per native_abi.hpp
  std::size_t paramCount = 0;  ///< expected size of the params table
};

/// Lower `plan`'s structure to a C translation unit.  Deterministic: equal
/// plan structures produce byte-identical text.
NativeSource emitNativePlan(const AccessPlan& plan);

/// Serialize `plan`'s numeric values into the parameter table the emitted
/// code expects, in the emitter's canonical slot order:
///   [per loop: lo, hi]
///   [per loop, per segment: lo, hi]
///   [per loop, per child, per outer guard: lo, hi]
///   [per statement: write ref then reads; per ref: constTerm, coeffs...]
std::vector<std::int64_t> nativeParams(const AccessPlan& plan);

}  // namespace gcr
