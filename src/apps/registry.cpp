#include "apps/registry.hpp"

#include "apps/adi.hpp"
#include "apps/extra_kernels.hpp"
#include "apps/sp.hpp"
#include "apps/sweep3d.hpp"
#include "apps/swim.hpp"
#include "apps/tomcatv.hpp"
#include "support/assert.hpp"

namespace gcr::apps {

namespace {
Program buildTomcatvDefault() { return tomcatvProgram(); }
}  // namespace

const std::vector<AppInfo>& evaluationApps() {
  static const std::vector<AppInfo> apps = {
      {"Swim", "SPEC95", "513x513", &swimProgram},
      {"Tomcatv", "SPEC95", "513x513", &buildTomcatvDefault},
      {"ADI", "self-written", "2Kx2K", &adiProgram},
      {"SP", "NAS/NPB Serial v2.3", "class B, 3 iterations", &spProgram},
  };
  return apps;
}

Program buildApp(const std::string& name) {
  for (const AppInfo& info : evaluationApps())
    if (info.name == name) return info.build();
  if (name == "Sweep3D") return sweep3dProgram();
  if (name == "Tomcatv-noInterchange") return tomcatvProgram(false);
  if (name == "Jacobi") return jacobiProgram();
  if (name == "Livermore") return livermoreProgram();
  throw Error("unknown application: " + name);
}

}  // namespace gcr::apps
