// Fuzz contract: statically legal => the optimized program is byte-identical
// between the tree-walking oracle and the compiled-plan engine, and
// semantically identical to the original.  20 random programs through the
// full pipeline with legality consultation on.
#include <gtest/gtest.h>

#include "analysis/legality.hpp"
#include "common/random_program.hpp"
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "interp/layout.hpp"

namespace gcr {
namespace {

std::vector<std::uint64_t> contents(const Program& p, std::int64_t n,
                                    ExecEngine engine) {
  const DataLayout l = contiguousLayout(p, n);
  ExecOptions opts{.n = n};
  opts.engine = engine;
  const ExecResult r = execute(p, l, opts);
  std::vector<std::uint64_t> all;
  for (std::size_t a = 0; a < p.arrays.size(); ++a)
    for (std::uint64_t v :
         extractArray(r, l, p, static_cast<ArrayId>(a), n))
      all.push_back(v);
  return all;
}

class VerifyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyFuzz, LegalMeansEnginesAgreeAfterTransform) {
  testing::RandomProgramOptions rpo;
  rpo.allowTwoDim = true;
  rpo.allowReversed = true;
  const Program p = testing::randomProgram(GetParam(), rpo);

  // The generator emits only valid programs: verification must not error.
  const VerifyResult v = verifyProgram(p, p.name);
  EXPECT_FALSE(anyErrors(v.diags));

  PipelineResult r = runPipeline(p);
  EXPECT_FALSE(anyErrors(r.diagnostics));

  const std::int64_t n = 20;
  // The applied transforms preserve semantics...
  EXPECT_EQ(contents(p, n, ExecEngine::TreeWalk),
            contents(r.program, n, ExecEngine::TreeWalk));
  // ...and the two execution engines agree bit-for-bit on the result.
  EXPECT_EQ(contents(r.program, n, ExecEngine::TreeWalk),
            contents(r.program, n, ExecEngine::Auto));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1020));

}  // namespace
}  // namespace gcr
