#include "driver/pipeline.hpp"

#include "fusion/legal.hpp"
#include "regroup/regroup.hpp"
#include "xform/distribute.hpp"
#include "xform/interchange.hpp"
#include "xform/unroll_split.hpp"

namespace gcr {

PipelineResult PipelineResult::clone() const {
  PipelineResult c;
  c.program = program.clone();
  c.regrouped = regrouped;
  c.regrouping = regrouping;
  c.fusionReport = fusionReport;
  c.regroupReport = regroupReport;
  c.unrolledLoops = unrolledLoops;
  c.arraysAfterSplit = arraysAfterSplit;
  c.distributedLoops = distributedLoops;
  c.diagnostics = diagnostics;
  return c;
}

PipelineResult runPipeline(const Program& in, const PipelineOptions& opts) {
  PipelineResult result;
  Program p = in.clone();
  const std::int64_t minN = opts.fusionOptions.minN;

  // Legality verdicts are gathered *before* the pass runs; a refused request
  // is a note (the pass obeys the verdict), not a defect of the program.
  auto consult = [&](std::vector<Diagnostic> v) {
    if (!opts.checkLegality) return;
    for (Diagnostic& d : v) {
      if (d.severity != Severity::Note) {
        d.severity = Severity::Note;
        d.message = "refused: " + d.message;
      }
      result.diagnostics.push_back(std::move(d));
    }
  };

  if (opts.unrollSplit) {
    consult(checkUnrollSplitLegal(p, 8, 8, in.name));
    p = unrollSmallLoops(p, 8, &result.unrolledLoops);
    SplitResult split = splitConstantDims(p);
    p = std::move(split.program);
    result.arraysAfterSplit = static_cast<int>(p.arrays.size());
  }
  if (opts.orderLevels)
    orderLevelsForFusion(p, minN,
                         opts.checkLegality ? &result.diagnostics : nullptr,
                         in.name);
  if (opts.distribute) {
    consult(checkDistributeLegal(p, minN, in.name));
    p = distributeLoops(p, minN, &result.distributedLoops);
  }
  if (opts.fuse) {
    consult(checkProgramFusionLegal(p, minN, opts.fusionOptions.maxPeel,
                                    in.name));
    p = fuseProgramLevels(p, opts.fusionLevels, opts.fusionOptions,
                          &result.fusionReport);
  }
  if (opts.regroup) {
    result.regrouping =
        Regrouping::analyze(p, opts.regroupOptions, &result.regroupReport);
    std::vector<Diagnostic> verdict =
        opts.checkLegality
            ? checkRegroupLegal(p, result.regrouping, minN, in.name)
            : std::vector<Diagnostic>{};
    if (anyErrors(verdict)) {
      // Failed the bijectivity certificate: abandon the regrouping (the
      // contiguous layout is always valid) and keep the errors on record.
      appendDiagnostics(result.diagnostics, verdict);
      result.regrouped = false;
    } else {
      consult(std::move(verdict));
      result.regrouped = true;
    }
  }
  result.program = std::move(p);
  return result;
}

PipelineOptions pipelineOptionsFor(Strategy strategy,
                                   const VersionSpec& spec) {
  PipelineOptions opts;
  switch (strategy) {
    case Strategy::NoOpt:
      // Identity pipeline: no pass runs, no legality consultation.
      opts.unrollSplit = false;
      opts.distribute = false;
      opts.fuse = false;
      opts.regroup = false;
      opts.checkLegality = false;
      break;
    case Strategy::SgiLike:
      // Local optimization: unroll/split small dimensions (any production
      // compiler does), then fuse only within nests (minLevel = 1).
      opts.distribute = false;
      opts.fusionOptions = spec.fusionOptions;
      opts.fusionOptions.minLevel = 1;
      opts.regroup = false;
      break;
    case Strategy::Fused:
      opts.fusionLevels = spec.fusionLevels;
      opts.fusionOptions = spec.fusionOptions;
      opts.regroup = false;
      break;
    case Strategy::FusedRegrouped:
      opts.fusionLevels = spec.fusionLevels;
      opts.fusionOptions = spec.fusionOptions;
      opts.regroupOptions = spec.regroupOptions;
      break;
    case Strategy::RegroupedOnly:
      opts.fuse = false;
      opts.distribute = false;
      opts.regroupOptions = spec.regroupOptions;
      break;
  }
  return opts;
}

std::string versionNameFor(Strategy strategy, const VersionSpec& spec) {
  switch (strategy) {
    case Strategy::NoOpt:
      return "NoOpt";
    case Strategy::SgiLike:
      return "SGI-like";
    case Strategy::Fused:
      return "fused(" + std::to_string(spec.fusionLevels) + ")";
    case Strategy::FusedRegrouped:
      return "fused+regrouped";
    case Strategy::RegroupedOnly:
      return "regrouped-only";
  }
  return "unknown";
}

ProgramVersion assembleVersion(PipelineResult result, Strategy strategy,
                               const VersionSpec& spec) {
  std::string name = versionNameFor(strategy, spec);
  switch (strategy) {
    case Strategy::NoOpt:
    case Strategy::Fused:
      return ProgramVersion{std::move(name), std::move(result.program),
                            [](const Program& p, std::int64_t n) {
                              return contiguousLayout(p, n);
                            }};
    case Strategy::SgiLike: {
      const std::int64_t padBytes = spec.padBytes;
      return ProgramVersion{std::move(name), std::move(result.program),
                            [padBytes](const Program& p, std::int64_t n) {
                              return paddedLayout(p, n, padBytes);
                            }};
    }
    case Strategy::FusedRegrouped:
    case Strategy::RegroupedOnly: {
      // The layout factory owns the analysis result by value.  Matching the
      // historical factories, the regrouped layout is used even when the
      // pipeline abandoned the regrouping (an un-analyzed Regrouping yields
      // the contiguous layout anyway).
      Regrouping rg = std::move(result.regrouping);
      return ProgramVersion{std::move(name), std::move(result.program),
                            [rg](const Program& p, std::int64_t n) {
                              return rg.layout(p, n);
                            }};
    }
  }
  return ProgramVersion{std::move(name), std::move(result.program),
                        [](const Program& p, std::int64_t n) {
                          return contiguousLayout(p, n);
                        }};
}

ProgramVersion makeVersion(const Program& in, Strategy strategy,
                           const VersionSpec& spec) {
  return assembleVersion(runPipeline(in, pipelineOptionsFor(strategy, spec)),
                         strategy, spec);
}

}  // namespace gcr
