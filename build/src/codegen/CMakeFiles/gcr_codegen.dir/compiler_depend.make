# Empty compiler generated dependencies file for gcr_codegen.
# This may be replaced when dependencies are built.
