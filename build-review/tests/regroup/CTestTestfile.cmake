# CMake generated Testfile for 
# Source directory: /root/repo/tests/regroup
# Build directory: /root/repo/build-review/tests/regroup
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/regroup/test_regroup[1]_include.cmake")
