// Multi-tenant server load generator: spawn the gcr-server daemon, drive
// thousands of mixed cold/warm requests from N client threads (one tenant
// per thread), and report request latency percentiles, throughput, and the
// cross-tenant sharing counters.
//
// Four gates (all also recorded in BENCH_server.json for CI):
//   * cross-tenant sharing must actually happen: with every tenant asking
//     for the same catalog of work, the shared Engine's measurement-cache
//     hits + in-flight coalescing must be > 0 across >= 2 tenants;
//   * wire results must be byte-identical to a direct in-process Engine run
//     of the same work (the per-run wall-clock observability fields of a
//     fresh computation are masked; see below);
//   * a warm duplicate request must be answered with the *verbatim* bytes
//     of the first reply (cache replays are bit-exact, wall fields
//     included);
//   * SIGTERM while a request is in flight must drain cleanly: the client
//     still gets a well-formed reply (the result, or an explicit
//     ShuttingDown error), and the daemon exits 0.
//
// The daemon binary is located via $GCR_SERVER_BIN, then as
// <bindir>/../tools/gcr-server; if neither exists the server runs
// in-process (same Server class, drain exercised via drainAndStop()).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "bench_util.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "store/codec.hpp"

namespace {

using namespace gcr;
using namespace gcr::server;

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string makeTempDir(const char* stem) {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / stem).string() + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) return {};
  return buf.data();
}

/// The work catalog every tenant draws from: 4 apps x 4 strategies, plus a
/// reuse profile per app.  Small enough that the cold pass is seconds, hot
/// enough that the simulated working sets exceed the simulated L2.
struct Spec {
  const char* app;
  Strategy strategy;
  std::int64_t n;
};

std::vector<Spec> makeCatalog() {
  const Strategy strategies[] = {Strategy::NoOpt, Strategy::SgiLike,
                                 Strategy::Fused, Strategy::FusedRegrouped};
  const std::pair<const char*, std::int64_t> apps[] = {
      {"ADI", 200}, {"Swim", 96}, {"Tomcatv", 96}, {"SP", 16}};
  std::vector<Spec> catalog;
  for (const auto& [app, n] : apps)
    for (Strategy s : strategies) catalog.push_back({app, s, n});
  return catalog;
}

MeasureRequest measureRequestFor(const Spec& s, const MachineConfig& machine) {
  MeasureRequest req;
  req.spec.app = s.app;
  req.spec.strategy = s.strategy;
  req.n = s.n;
  req.timeSteps = 1;
  req.machine = machine;
  return req;
}

/// Everything but the per-run wall-clock observability fields; a fresh
/// computation's wallSeconds/accessesPerSecond differ run to run by design,
/// while all simulation outputs are deterministic.
bool identicalMasked(const Measurement& a, const Measurement& b) {
  return std::memcmp(&a.counts, &b.counts, sizeof a.counts) == 0 &&
         a.cycles == b.cycles &&
         a.memoryTrafficBytes == b.memoryTrafficBytes &&
         a.effectiveBandwidth == b.effectiveBandwidth;
}

struct ClientStats {
  std::vector<double> latencies;  ///< seconds per completed request
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t errored = 0;
};

/// One tenant's load loop: `requests` randomly ordered draws from the
/// catalog (deterministic per-thread LCG), 1-in-8 a reuse profile, the rest
/// measurements.  The first draw of each spec anywhere in the fleet is a
/// cold computation; every other draw must be served by the shared caches.
ClientStats runTenant(const std::string& address, int tenantIndex,
                      int requests, const std::vector<Spec>& catalog,
                      const MachineConfig& machine) {
  ClientStats stats;
  std::string error;
  const std::string tenant = "tenant-" + std::to_string(tenantIndex);
  const std::unique_ptr<Client> client =
      Client::connect(address, tenant, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "FATAL: %s: %s\n", tenant.c_str(), error.c_str());
    stats.errored = static_cast<std::uint64_t>(requests);
    return stats;
  }

  std::uint64_t lcg = 0x9e3779b97f4a7c15ull * (tenantIndex + 1);
  stats.latencies.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const Spec& spec = catalog[(lcg >> 33) % catalog.size()];
    const double t0 = now();
    bool ok = false, busy = false;
    if (i % 8 == 7) {
      ProfileRequest req;
      req.spec.app = spec.app;
      req.spec.strategy = Strategy::NoOpt;
      req.n = spec.n;
      const Result<ReuseProfile> r = client->profile(req);
      ok = r.ok();
      busy = !ok && r.error == ErrorCode::Busy;
    } else {
      const Result<Measurement> r =
          client->measure(measureRequestFor(spec, machine));
      ok = r.ok();
      busy = !ok && r.error == ErrorCode::Busy;
    }
    if (ok) {
      stats.latencies.push_back(now() - t0);
      ++stats.ok;
    } else if (busy) {
      ++stats.busy;  // explicit backpressure: refused before any work
    } else {
      ++stats.errored;
    }
  }
  return stats;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

/// Locate the daemon binary: $GCR_SERVER_BIN, then ../tools/gcr-server next
/// to this bench binary.  Empty when unavailable (in-process fallback).
std::string findDaemonBinary(const char* argv0) {
  if (const char* env = std::getenv("GCR_SERVER_BIN");
      env != nullptr && *env != '\0')
    return std::filesystem::exists(env) ? std::string(env) : std::string();
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::canonical(argv0, ec);
  if (ec) return {};
  const std::filesystem::path candidate =
      self.parent_path().parent_path() / "tools" / "gcr-server";
  return std::filesystem::exists(candidate) ? candidate.string()
                                            : std::string();
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  bench::printHeader(
      "gcr-server load: N tenants, mixed cold/warm requests, one shared "
      "Engine",
      "cross-tenant cache sharing + wire/in-process byte identity + "
      "SIGTERM drain");

  const std::string cacheDir = makeTempDir("gcr-bench-server-store");
  const std::string sockDir = makeTempDir("gcr-bench-server-sock");
  if (cacheDir.empty() || sockDir.empty()) {
    std::fprintf(stderr, "FATAL: cannot create temp dirs\n");
    return 1;
  }
  const std::string socketPath = sockDir + "/gcr.sock";

  auto envInt = [](const char* name, int fallback) {
    const char* env = std::getenv(name);
    const int v = env != nullptr ? std::atoi(env) : 0;
    return v > 0 ? v : fallback;
  };
  const int threads = envInt("GCR_SERVER_CLIENTS", 8);
  const int perTenant =
      std::max(1, envInt("GCR_SERVER_REQUESTS", 2000) / threads);

  // --- start the daemon (spawned binary, or in-process fallback) -----------
  const std::string daemonBin = findDaemonBinary(argv[0]);
  pid_t daemonPid = -1;
  std::unique_ptr<Server> inProcess;
  if (!daemonBin.empty()) {
    daemonPid = ::fork();
    if (daemonPid == 0) {
      ::execl(daemonBin.c_str(), daemonBin.c_str(), "--socket",
              socketPath.c_str(), "--cache-dir", cacheDir.c_str(),
              static_cast<char*>(nullptr));
      std::perror("execl gcr-server");
      ::_exit(127);
    }
  } else {
    ServerOptions so;
    so.unixSocketPath = socketPath;
    so.engine.cacheDir = cacheDir;
    inProcess = Server::start(so);
    if (inProcess == nullptr) {
      std::fprintf(stderr, "FATAL: cannot start in-process server\n");
      return 1;
    }
  }
  std::printf("daemon: %s\n",
              daemonBin.empty() ? "(in-process Server)" : daemonBin.c_str());

  // Wait until the socket accepts connections.
  bool up = false;
  for (int i = 0; i < 200 && !up; ++i) {
    const int fd = connectAddress(socketPath);
    if (fd >= 0) {
      ::close(fd);
      up = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (!up) {
    std::fprintf(stderr, "FATAL: daemon did not come up on %s\n",
                 socketPath.c_str());
    return 1;
  }

  const std::vector<Spec> catalog = makeCatalog();
  const MachineConfig machine = MachineConfig::origin2000();

  // --- the load ------------------------------------------------------------
  const double loadStart = now();
  std::vector<ClientStats> perThread(static_cast<std::size_t>(threads));
  {
    std::vector<std::thread> fleet;
    for (int t = 0; t < threads; ++t)
      fleet.emplace_back([&, t] {
        perThread[static_cast<std::size_t>(t)] =
            runTenant(socketPath, t, perTenant, catalog, machine);
      });
    for (std::thread& th : fleet) th.join();
  }
  const double loadSeconds = now() - loadStart;

  std::vector<double> latencies;
  std::uint64_t okCount = 0, busyCount = 0, errorCount = 0;
  for (ClientStats& s : perThread) {
    latencies.insert(latencies.end(), s.latencies.begin(), s.latencies.end());
    okCount += s.ok;
    busyCount += s.busy;
    errorCount += s.errored;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double throughput =
      loadSeconds > 0 ? static_cast<double>(okCount) / loadSeconds : 0.0;

  // --- verification client: stats, byte identity, warm duplicates ----------
  std::string error;
  const std::unique_ptr<Client> check =
      Client::connect(socketPath, "verifier", &error);
  if (check == nullptr) {
    std::fprintf(stderr, "FATAL: verifier cannot connect: %s\n",
                 error.c_str());
    return 1;
  }
  const Result<StatsReply> statsReply = check->stats();
  if (!statsReply.ok()) {
    std::fprintf(stderr, "FATAL: stats request failed: %s\n",
                 statsReply.message.c_str());
    return 1;
  }
  const Engine::Stats& es = statsReply->engine;
  const std::uint64_t shared = es.measurement.hits + es.profile.hits +
                               es.inflightCoalesced;
  const bool crossTenant = statsReply->tenants.size() >= 2;
  const bool dedupOk = shared > 0 && crossTenant;

  // Byte identity: every catalog entry through the wire vs a direct
  // in-process Engine (its own memory-only caches; nothing shared with the
  // daemon).  The wire replies are warm by now, replaying the daemon's
  // first computation of each spec.
  bool byteIdentical = true;
  {
    Engine direct;
    for (const Spec& s : catalog) {
      const Result<Measurement> wire =
          check->measure(measureRequestFor(s, machine));
      if (!wire.ok()) {
        byteIdentical = false;
        break;
      }
      const std::vector<std::uint8_t> first = check->lastPayload();
      WorkSpec spec;
      spec.app = s.app;
      spec.strategy = s.strategy;
      const Measurement local = direct.measure(
          direct.version(apps::buildApp(s.app), s.strategy,
                         spec.versionSpec()),
          s.n, machine, 1, {});
      if (!identicalMasked(*wire, local)) {
        std::fprintf(stderr, "byte-identity FAILED: %s/%d\n", s.app,
                     static_cast<int>(s.strategy));
        byteIdentical = false;
        break;
      }
      // Warm duplicate: the repeat must replay the first reply verbatim —
      // wall-clock fields included, because a cache hit is bit-exact.
      const Result<Measurement> dup =
          check->measure(measureRequestFor(s, machine));
      if (!dup.ok() || check->lastPayload() != first) {
        std::fprintf(stderr, "warm-duplicate replay FAILED: %s/%d\n", s.app,
                     static_cast<int>(s.strategy));
        byteIdentical = false;
        break;
      }
    }
  }

  // --- drain: SIGTERM with a request in flight ------------------------------
  bool drainReplyOk = false;
  std::thread drainClientThread([&] {
    std::string err;
    const std::unique_ptr<Client> c =
        Client::connect(socketPath, "drain-tenant", &err);
    if (c == nullptr) return;
    // A spec the fleet never computed: forced cold, so it is genuinely in
    // flight when the signal lands.
    Spec cold{"ADI", Strategy::FusedRegrouped, 208};
    const Result<Measurement> r = c->measure(measureRequestFor(cold, machine));
    // Admitted work must complete; work arriving after the drain begins is
    // refused with an explicit ShuttingDown.  Either way the reply is
    // well-formed — what must never happen is a lost reply or a reset.
    drainReplyOk = r.ok() || r.error == ErrorCode::ShuttingDown;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  bool daemonExitOk = false;
  if (daemonPid > 0) {
    ::kill(daemonPid, SIGTERM);
    int status = 0;
    daemonExitOk = ::waitpid(daemonPid, &status, 0) == daemonPid &&
                   WIFEXITED(status) && WEXITSTATUS(status) == 0;
  } else {
    inProcess->drainAndStop();
    daemonExitOk = true;
  }
  drainClientThread.join();
  const bool drainOk = drainReplyOk && daemonExitOk;

  // --- report --------------------------------------------------------------
  const std::uint64_t total = okCount + busyCount + errorCount;
  std::printf("load: %llu requests (%d tenants x %d), %.2f s wall\n",
              static_cast<unsigned long long>(total), threads, perTenant,
              loadSeconds);
  std::printf("latency: p50 %.3f ms, p99 %.3f ms; throughput %.0f req/s\n",
              p50 * 1e3, p99 * 1e3, throughput);
  std::printf("outcomes: %llu ok, %llu busy, %llu errored\n",
              static_cast<unsigned long long>(okCount),
              static_cast<unsigned long long>(busyCount),
              static_cast<unsigned long long>(errorCount));
  std::printf("cross-tenant sharing: %llu measurement hits, %llu profile "
              "hits, %llu coalesced, %zu tenants — %s\n",
              static_cast<unsigned long long>(es.measurement.hits),
              static_cast<unsigned long long>(es.profile.hits),
              static_cast<unsigned long long>(es.inflightCoalesced),
              statsReply->tenants.size(), dedupOk ? "ok" : "FAIL");
  std::printf("wire vs in-process byte identity: %s\n",
              byteIdentical ? "ok" : "FAIL");
  std::printf("SIGTERM drain (reply delivered, exit 0): %s\n",
              drainOk ? "ok" : "FAIL");

  {
    bench::ResultWriter out("server");
    JsonWriter& j = out.json();
    j.field("daemon", daemonBin.empty() ? "in-process" : "spawned");
    j.field("tenants", std::int64_t{threads});
    j.field("requests_per_tenant", std::int64_t{perTenant});
    j.field("requests_total", total);
    j.field("requests_ok", okCount);
    j.field("requests_busy", busyCount);
    j.field("requests_errored", errorCount);
    j.field("load_seconds", loadSeconds, 3);
    j.field("latency_p50_ms", p50 * 1e3, 3);
    j.field("latency_p99_ms", p99 * 1e3, 3);
    j.field("throughput_rps", throughput, 1);
    j.field("measurement_cache_hits", es.measurement.hits);
    j.field("profile_cache_hits", es.profile.hits);
    j.field("inflight_coalesced", es.inflightCoalesced);
    j.field("store_hits", es.store.hits);
    j.field("store_puts", es.store.puts);
    j.field("tenant_count", std::uint64_t{statsReply->tenants.size()});
    j.field("dedup_gate_ok", dedupOk);
    j.field("byte_identical", byteIdentical);
    j.field("drain_ok", drainOk);
    out.addEngineStats(es);
    out.finish();
  }

  std::error_code ec;
  std::filesystem::remove_all(cacheDir, ec);
  std::filesystem::remove_all(sockDir, ec);

  const bool ok = dedupOk && byteIdentical && drainOk && errorCount == 0;
  std::printf("server load verdict: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
