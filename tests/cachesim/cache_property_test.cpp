// Cache-model property tests: LRU's stack property, geometry monotonicity,
// and a differential check against a naive reference model.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "cachesim/cache.hpp"
#include "support/prng.hpp"

namespace gcr {
namespace {

std::vector<std::int64_t> randomTrace(std::uint64_t seed, int len,
                                      std::int64_t span) {
  SplitMix64 rng(seed);
  std::vector<std::int64_t> trace;
  trace.reserve(static_cast<std::size_t>(len));
  std::int64_t cursor = rng.nextInRange(0, span);
  for (int i = 0; i < len; ++i) {
    // Mix of streaming and random jumps, like real loop traces.
    if (rng.nextBelow(4) == 0) cursor = rng.nextInRange(0, span);
    cursor = (cursor + 8) % span;
    trace.push_back(cursor);
  }
  return trace;
}

/// Naive fully-associative LRU reference.
std::uint64_t naiveFullyAssocMisses(const std::vector<std::int64_t>& trace,
                                    std::int64_t lineSize, int capacity) {
  std::list<std::int64_t> lru;  // front = most recent
  std::map<std::int64_t, std::list<std::int64_t>::iterator> where;
  std::uint64_t misses = 0;
  for (std::int64_t addr : trace) {
    const std::int64_t block = addr / lineSize;
    auto it = where.find(block);
    if (it != where.end()) {
      lru.erase(it->second);
    } else {
      ++misses;
      if (static_cast<int>(lru.size()) == capacity) {
        where.erase(lru.back());
        lru.pop_back();
      }
    }
    lru.push_front(block);
    where[block] = lru.begin();
  }
  return misses;
}

class CacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheProperty, FullyAssociativeMatchesNaiveLru) {
  const auto trace = randomTrace(GetParam(), 20000, 1 << 16);
  for (int lines : {4, 16, 64}) {
    SetAssocCache c(CacheConfig{lines * 32, 32, lines, "fa"});
    for (std::int64_t a : trace) c.access(a, false);
    EXPECT_EQ(c.stats().misses, naiveFullyAssocMisses(trace, 32, lines))
        << "lines " << lines;
  }
}

TEST_P(CacheProperty, LruStackPropertyCapacityMonotone) {
  // Inclusion/stack property: for fully-associative LRU, a larger cache
  // never misses more on the same trace.
  const auto trace = randomTrace(GetParam() * 13 + 5, 20000, 1 << 16);
  std::uint64_t prev = ~std::uint64_t{0};
  for (int lines : {2, 4, 8, 16, 32, 64, 128}) {
    SetAssocCache c(CacheConfig{lines * 32, 32, lines, "fa"});
    for (std::int64_t a : trace) c.access(a, false);
    EXPECT_LE(c.stats().misses, prev) << "lines " << lines;
    prev = c.stats().misses;
  }
}

TEST_P(CacheProperty, MoreWaysSameSetsNeverHurts) {
  // Growing associativity while keeping the set count fixed adds capacity
  // per set: per-set LRU stack property applies set by set.
  const auto trace = randomTrace(GetParam() * 3 + 7, 20000, 1 << 16);
  std::uint64_t prev = ~std::uint64_t{0};
  for (int ways : {1, 2, 4, 8}) {
    SetAssocCache c(CacheConfig{16 * ways * 32, 32, ways, "w"});
    for (std::int64_t a : trace) c.access(a, false);
    EXPECT_LE(c.stats().misses, prev) << "ways " << ways;
    prev = c.stats().misses;
  }
}

TEST_P(CacheProperty, PrefetchNeverLosesLinesItDidNotTouch) {
  // With prefetch disabled at the cache level (never calling prefetch()),
  // stats must stay prefetch-free; with prefetch, demand misses never
  // exceed the no-prefetch count on a forward-streaming trace.
  std::vector<std::int64_t> stream;
  for (std::int64_t a = 0; a < 1 << 18; a += 8) stream.push_back(a);
  SetAssocCache plain(CacheConfig{64 * 32, 32, 64, "p"});
  SetAssocCache withPf(CacheConfig{64 * 32, 32, 64, "q"});
  for (std::int64_t a : stream) {
    if (!withPf.access(a, false)) withPf.prefetch(a + 32);
    plain.access(a, false);
  }
  EXPECT_EQ(plain.stats().prefetchFills, 0u);
  EXPECT_LE(withPf.stats().misses, plain.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace gcr
