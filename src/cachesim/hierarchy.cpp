#include "cachesim/hierarchy.hpp"

namespace gcr {

MachineConfig MachineConfig::origin2000() {
  MachineConfig cfg;
  cfg.l1 = CacheConfig{32 * 1024, 32, 2, "L1"};
  cfg.l2 = CacheConfig{4 * 1024 * 1024, 128, 2, "L2"};
  cfg.tlbEntries = 64;
  cfg.pageSize = 16 * 1024;
  cfg.name = "Origin2000(R12K)";
  return cfg;
}

MachineConfig MachineConfig::octane() {
  MachineConfig cfg = origin2000();
  cfg.l2.sizeBytes = 1024 * 1024;
  cfg.name = "Octane(R10K)";
  return cfg;
}

MachineConfig MachineConfig::scaledDown(int k) const {
  GCR_CHECK(k > 0, "scale factor must be positive");
  MachineConfig cfg = *this;
  cfg.l1.sizeBytes /= k;
  cfg.l2.sizeBytes /= k;
  cfg.tlbEntries = std::max(4, cfg.tlbEntries / k);
  cfg.name = name + "/"+ std::to_string(k);
  return cfg;
}

MemoryHierarchy::MemoryHierarchy(const MachineConfig& cfg)
    : cfg_(cfg),
      l1_(cfg.l1),
      l2_(cfg.l2),
      tlb_(makeTlb(cfg.tlbEntries, cfg.pageSize)) {}

void MemoryHierarchy::access(std::int64_t addr, bool isWrite) {
  tlb_.access(addr, false);
  if (!l1_.access(addr, isWrite)) {
    // L1 miss allocates in L1; the fill (and any write-allocate) reads
    // through L2.
    // Tagged next-line prefetch: trigger on a demand miss and again on the
    // first hit to a prefetched line, so a stream stays one line ahead.
    const bool l2Hit = l2_.access(addr, isWrite);
    if (cfg_.l2NextLinePrefetch && (!l2Hit || l2_.lastHitWasPrefetched()))
      l2_.prefetch(addr + cfg_.l2.lineSize);
  }
}

void MemoryHierarchy::onInstr(int, std::span<const std::int64_t> reads,
                              std::int64_t write) {
  for (std::int64_t r : reads) access(r, false);
  access(write, true);
}

void MemoryHierarchy::onBlock(const InstrBlock& b) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    for (std::int64_t r : b.reads(i)) access(r, false);
    access(b.writes[i], true);
  }
}

MissCounts MemoryHierarchy::counts() const {
  MissCounts m;
  m.refs = l1_.stats().accesses;
  m.l1Misses = l1_.stats().misses;
  m.l2Misses = l2_.stats().misses;
  m.tlbMisses = tlb_.stats().misses;
  m.l2Writebacks = l2_.stats().writebacks;
  m.l2Prefetches = l2_.stats().prefetchFills;
  m.l2PrefetchHits = l2_.stats().prefetchHits;
  return m;
}

std::uint64_t MemoryHierarchy::memoryTrafficBytes() const {
  return (l2_.stats().misses + l2_.stats().prefetchFills +
          l2_.stats().writebacks) *
         static_cast<std::uint64_t>(cfg_.l2.lineSize);
}

double MemoryHierarchy::effectiveBandwidthRatio() const {
  const std::uint64_t traffic = memoryTrafficBytes();
  if (traffic == 0) return 0.0;
  return static_cast<double>(l1_.stats().accesses * 8) /
         static_cast<double>(traffic);
}

}  // namespace gcr
