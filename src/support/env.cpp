#include "support/env.hpp"

#include <cstdlib>

namespace gcr::env {

namespace {

std::string raw(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

}  // namespace

int threads() {
  const std::string v = raw("GCR_THREADS");
  if (v.empty()) return 0;
  const int parsed = std::atoi(v.c_str());
  return parsed >= 1 ? parsed : 0;
}

std::string cacheDir() { return raw("GCR_CACHE_DIR"); }

std::string engineToken() { return raw("GCR_ENGINE"); }

}  // namespace gcr::env
