// Trace sinks: consumers of the interpreter's dynamic instruction stream.
//
// One dynamic instruction = one executed statement instance, with the byte
// addresses it reads (in rhs order) and the one it writes.  Locality and
// cache analyses flatten this to an access stream (reads first, then the
// write, matching actual execution); the reuse-driven-execution study keeps
// instruction granularity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gcr {

class InstrSink {
 public:
  virtual ~InstrSink() = default;
  virtual void onInstr(int stmtId, std::span<const std::int64_t> readAddrs,
                       std::int64_t writeAddr) = 0;
};

/// Fan-out to several sinks.
class TeeSink final : public InstrSink {
 public:
  explicit TeeSink(std::vector<InstrSink*> sinks) : sinks_(std::move(sinks)) {}
  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) override {
    for (InstrSink* s : sinks_) s->onInstr(stmtId, reads, write);
  }

 private:
  std::vector<InstrSink*> sinks_;
};

/// Counts instructions and memory references.
class CountingSink final : public InstrSink {
 public:
  void onInstr(int, std::span<const std::int64_t> reads,
               std::int64_t) override {
    ++instrs_;
    refs_ += reads.size() + 1;
  }
  std::uint64_t instrs() const { return instrs_; }
  std::uint64_t refs() const { return refs_; }

 private:
  std::uint64_t instrs_ = 0;
  std::uint64_t refs_ = 0;
};

/// Compact in-memory instruction trace (structure-of-arrays): input of the
/// reuse-driven-execution simulator.
class InstrTrace final : public InstrSink {
 public:
  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) override {
    stmtIds_.push_back(stmtId);
    readOffsets_.push_back(static_cast<std::uint32_t>(readPool_.size()));
    readPool_.insert(readPool_.end(), reads.begin(), reads.end());
    writes_.push_back(write);
  }

  std::size_t size() const { return stmtIds_.size(); }
  int stmtId(std::size_t i) const { return stmtIds_[i]; }
  std::int64_t writeAddr(std::size_t i) const { return writes_[i]; }
  std::span<const std::int64_t> reads(std::size_t i) const {
    const std::uint32_t begin = readOffsets_[i];
    const std::uint32_t end = i + 1 < readOffsets_.size()
                                  ? readOffsets_[i + 1]
                                  : static_cast<std::uint32_t>(readPool_.size());
    return {readPool_.data() + begin, readPool_.data() + end};
  }

 private:
  std::vector<int> stmtIds_;
  std::vector<std::uint32_t> readOffsets_;
  std::vector<std::int64_t> readPool_;
  std::vector<std::int64_t> writes_;
};

}  // namespace gcr
