// Property tests for regrouping: for random programs, the regrouped layout
// must be injective (no two logical elements share an address), fit in the
// declared data segment, and leave program semantics untouched.
#include <gtest/gtest.h>

#include <set>

#include "common/random_program.hpp"
#include "interp/interp.hpp"
#include "regroup/regroup.hpp"

namespace gcr {
namespace {

class RegroupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegroupProperty, LayoutIsInjectiveAndInBounds) {
  testing::RandomProgramOptions opts;
  opts.allowTwoDim = true;
  Program p = testing::randomProgram(GetParam() * 101 + 7, opts);
  Regrouping rg = Regrouping::analyze(p);
  const std::int64_t n = 11;
  DataLayout l = rg.layout(p, n);

  std::set<std::int64_t> seen;
  for (std::size_t a = 0; a < p.arrays.size(); ++a) {
    const auto ext = concreteExtents(p.arrays[a], n);
    std::vector<std::int64_t> idx(ext.size(), 0);
    for (;;) {
      const std::int64_t addr = l.addressOf(static_cast<ArrayId>(a), idx);
      ASSERT_GE(addr, 0);
      ASSERT_LE(addr + 8, l.totalBytes());
      ASSERT_TRUE(seen.insert(addr).second)
          << "address collision in " << p.arrays[a].name;
      int d = static_cast<int>(ext.size()) - 1;
      while (d >= 0 &&
             ++idx[static_cast<std::size_t>(d)] == ext[static_cast<std::size_t>(d)]) {
        idx[static_cast<std::size_t>(d)] = 0;
        --d;
      }
      if (d < 0) break;
    }
  }
}

TEST_P(RegroupProperty, SemanticsPreserved) {
  testing::RandomProgramOptions ropts;
  ropts.allowTwoDim = true;
  Program p = testing::randomProgram(GetParam() * 37 + 3, ropts);
  Regrouping rg = Regrouping::analyze(p);
  for (std::int64_t n : {16, 23}) {
    DataLayout plain = contiguousLayout(p, n);
    DataLayout grouped = rg.layout(p, n);
    ExecResult r1 = execute(p, plain, {.n = n});
    ExecResult r2 = execute(p, grouped, {.n = n});
    ASSERT_TRUE(sameArrayContents(p, r1, plain, r2, grouped, n));
  }
}

TEST_P(RegroupProperty, OptionsStillInjective) {
  testing::RandomProgramOptions ropts;
  ropts.allowTwoDim = true;
  Program p = testing::randomProgram(GetParam() * 53 + 1, ropts);
  for (const bool skipInner : {false, true}) {
    RegroupOptions opts;
    opts.skipInnermostDim = skipInner;
    opts.innermostOnly = !skipInner;
    Regrouping rg = Regrouping::analyze(p, opts);
    const std::int64_t n = 9;
    DataLayout l = rg.layout(p, n);
    std::set<std::int64_t> seen;
    for (std::size_t a = 0; a < p.arrays.size(); ++a) {
      const auto ext = concreteExtents(p.arrays[a], n);
      std::vector<std::int64_t> idx(ext.size(), 0);
      for (;;) {
        ASSERT_TRUE(seen.insert(l.addressOf(static_cast<ArrayId>(a), idx)).second);
        int d = static_cast<int>(ext.size()) - 1;
        while (d >= 0 && ++idx[static_cast<std::size_t>(d)] ==
                             ext[static_cast<std::size_t>(d)]) {
          idx[static_cast<std::size_t>(d)] = 0;
          --d;
        }
        if (d < 0) break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegroupProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace gcr
