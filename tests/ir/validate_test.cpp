#include "ir/validate.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace gcr {
namespace {

TEST(Validate, AcceptsWellFormed) {
  ProgramBuilder b("ok");
  ArrayId a = b.array("A", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - AffineN(1),
         [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  Program p = b.take();
  EXPECT_NO_THROW(validate(p));
  EXPECT_EQ(validationError(p), "");
}

TEST(Validate, RejectsSubscriptDepthBeyondNest) {
  ProgramBuilder b("bad-depth");
  ArrayId a = b.array("A", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - AffineN(1),
         [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  Program p = b.take();
  // Corrupt: statement at top level referencing loop depth 2.
  p.top.push_back(Child{
      makeNode(Assign{-1, ArrayRef{a, {Subscript::var(2)}}, {}, 1, ""}),
      {}});
  EXPECT_NE(validationError(p), "");
}

TEST(Validate, RejectsRankMismatch) {
  ProgramBuilder b("bad-rank");
  ArrayId a = b.array("A", {AffineN::N(), AffineN::N()});
  Program p = b.take();
  p.top.push_back(Child{
      makeNode(Assign{-1, ArrayRef{a, {Subscript::constant(0)}}, {}, 1, ""}),
      {}});
  EXPECT_NE(validationError(p), "");
}

TEST(Validate, RejectsGuardAtTopLevel) {
  ProgramBuilder b("bad-guard");
  ArrayId a = b.array("A", {AffineN::N()});
  Program p = b.take();
  Child c{makeNode(Assign{-1, ArrayRef{a, {Subscript::constant(0)}}, {}, 1, ""}),
          {GuardSpec{0, AffineN(0), AffineN(0)}}};
  p.top.push_back(std::move(c));
  EXPECT_NE(validationError(p), "");
}

TEST(Validate, RejectsUndeclaredArray) {
  Program p;
  p.name = "ghost";
  p.top.push_back(Child{
      makeNode(Assign{-1, ArrayRef{0, {Subscript::constant(0)}}, {}, 1, ""}),
      {}});
  EXPECT_NE(validationError(p), "");
}

// ---- validateStrict: one test per rejection path --------------------------

bool strictHas(const std::vector<Diagnostic>& ds, const std::string& rule,
               Severity sev) {
  for (const Diagnostic& d : ds)
    if (d.pass == "validate" && d.rule == rule && d.severity == sev)
      return true;
  return false;
}

TEST(ValidateStrict, CleanProgramHasNoDiagnostics) {
  ProgramBuilder b("ok");
  ArrayId a = b.array("A", {AffineN::N()});
  b.loop("i", 1, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(a, {i}), {b.ref(a, {i - 1})}); });
  Program p = b.take();
  EXPECT_TRUE(validateStrict(p).empty());
}

TEST(ValidateStrict, StructureViolationIsASingleError) {
  ProgramBuilder b("bad-depth");
  ArrayId a = b.array("A", {AffineN::N()});
  Program p = b.take();
  p.top.push_back(Child{
      makeNode(Assign{-1, ArrayRef{a, {Subscript::var(2)}}, {}, 1, ""}),
      {}});
  const auto ds = validateStrict(p);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_TRUE(strictHas(ds, "structure", Severity::Error));
}

TEST(ValidateStrict, RejectsDiagonalSubscript) {
  ProgramBuilder b("diag");
  ArrayId a = b.array("A", {AffineN::N(), AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(a, {i, i}), {}); });
  Program p = b.take();
  EXPECT_TRUE(
      strictHas(validateStrict(p), "diagonal-subscript", Severity::Warning));
}

TEST(ValidateStrict, RejectsScaledOffset) {
  ProgramBuilder b("scaled");
  ArrayId a = b.array("A", {2 * AffineN::N() + 1});
  b.loop("i", 0, AffineN::N() - 1, [&](IxVar i) {
    b.assign(b.ref(a, {Subscript::var(i.depth, AffineN::N())}), {});
  });
  Program p = b.take();
  const auto ds = validateStrict(p);
  ASSERT_TRUE(strictHas(ds, "scaled-offset", Severity::Warning));
  for (const Diagnostic& d : ds)
    if (d.rule == "scaled-offset") {
      ASSERT_EQ(d.witness.size(), 2u);
      EXPECT_EQ(d.witness[1], 1);  // the N coefficient
    }
}

TEST(ValidateStrict, RejectsEmptyLoop) {
  ProgramBuilder b("empty");
  ArrayId a = b.array("A", {AffineN::N()});
  b.loop("i", 5, 2, [&](IxVar) { b.assign(b.ref(a, {cst(0)}), {}); });
  Program p = b.take();
  EXPECT_TRUE(strictHas(validateStrict(p), "empty-loop", Severity::Warning));
}

TEST(ValidateStrict, RejectsEmptyGuard) {
  ProgramBuilder b("guard");
  ArrayId a = b.array("A", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  Program p = b.take();
  // Guard [3, 1] on the loop's only child: provably empty for every n.
  p.top[0].node->loop().body[0].guards.push_back(
      GuardSpec{0, AffineN(3), AffineN(1)});
  EXPECT_TRUE(strictHas(validateStrict(p), "empty-guard", Severity::Warning));
}

TEST(ValidateStrict, FlagsDuplicateGuards) {
  ProgramBuilder b("dup");
  ArrayId a = b.array("A", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  Program p = b.take();
  auto& guards = p.top[0].node->loop().body[0].guards;
  guards.push_back(GuardSpec{0, AffineN(1), AffineN::N() - 1});
  guards.push_back(GuardSpec{0, AffineN(2), AffineN::N() - 2});
  EXPECT_TRUE(
      strictHas(validateStrict(p), "duplicate-guard", Severity::Note));
}

}  // namespace
}  // namespace gcr
