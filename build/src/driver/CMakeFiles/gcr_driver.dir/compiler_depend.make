# Empty compiler generated dependencies file for gcr_driver.
# This may be replaced when dependencies are built.
