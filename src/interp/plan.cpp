#include "interp/plan.hpp"

#include <algorithm>
#include <optional>

#include "support/prng.hpp"

namespace gcr {

namespace {

struct Range {
  std::int64_t lo = 0, hi = -1;

  bool empty() const { return lo > hi; }
  std::uint64_t trips() const {
    return static_cast<std::uint64_t>(hi - lo + 1);
  }
};

Range intersect(Range a, Range b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

// ---------------------------------------------------------------------------
// Compilation: one pass over the tree, evaluating every AffineN at the
// concrete problem size, resolving guards into per-statement iteration boxes,
// and folding each reference's layout map into (constTerm, coeff per depth).
// The executed iteration space of a statement is exactly the product of the
// per-depth effective ranges (loop range ∩ all guards on the path), so
// bounds and data-segment checks are decided here, not per instance.
// ---------------------------------------------------------------------------

class PlanCompiler {
 public:
  PlanCompiler(const Program& p, const DataLayout& layout,
               const ExecOptions& opts)
      : p_(p), layout_(layout), n_(opts.n), boundsCheck_(opts.boundsCheck) {
    plan_ = std::make_unique<AccessPlan>();
    plan_->program = &p;
    plan_->layout = &layout;
    plan_->n = opts.n;
    plan_->timeSteps = opts.timeSteps;
  }

  PlanCompileResult compile() {
    if (layout_.numArrays() != p_.arrays.size())
      return decline("layout does not match program arrays");
    if (layout_.totalBytes() % 8 != 0)
      return decline("layout not 8-byte aligned");
    for (const ArrayDecl& d : p_.arrays) {
      if (d.elemSize != 8) return decline("plan engine requires 8-byte elements");
      extents_.push_back(concreteExtents(d, n_));
    }
    for (const Child& c : p_.top) {
      if (!c.guards.empty()) return decline("guards at program top level");
      std::optional<Compiled> cc = compileChild(c, {});
      if (!fail_.empty()) return decline(fail_);
      if (cc) plan_->top.push_back(std::move(cc->child));
    }
    return {std::move(plan_), ""};
  }

 private:
  struct Compiled {
    PlanChild child;
    Range membership;  ///< executed sub-range of the parent loop variable
  };

  PlanCompileResult decline(std::string reason) {
    return {nullptr, std::move(reason)};
  }

  // Returns nullopt either because the child can never execute (dropped —
  // fail_ stays empty) or because compilation failed (fail_ set).
  std::optional<Compiled> compileChild(const Child& c, std::vector<Range> eff) {
    const int depth = static_cast<int>(eff.size());
    Compiled out;
    for (const GuardSpec& g : c.guards) {
      if (g.depth < 0 || g.depth >= depth) {
        fail_ = "guard depth beyond nest";
        return std::nullopt;
      }
      const Range guard{g.lo.eval(n_), g.hi.eval(n_)};
      const Range cur = eff[static_cast<std::size_t>(g.depth)];
      const Range narrowed = intersect(cur, guard);
      if (narrowed.empty()) return std::nullopt;  // never executes
      // Guards on the immediately enclosing loop variable are resolved into
      // iteration segments by the parent; guards on outer variables that
      // still bind anything become a once-per-loop-entry runtime test.
      if (g.depth < depth - 1 &&
          (narrowed.lo != cur.lo || narrowed.hi != cur.hi))
        out.child.outerGuards.push_back({g.depth, guard.lo, guard.hi});
      eff[static_cast<std::size_t>(g.depth)] = narrowed;
    }
    out.membership = depth > 0 ? eff[static_cast<std::size_t>(depth - 1)]
                               : Range{0, 0};
    if (c.node->isAssign()) {
      if (!compileStmt(c.node->assign(), eff, out.child)) return std::nullopt;
    } else {
      if (!compileLoop(c.node->loop(), std::move(eff), out.child))
        return std::nullopt;
    }
    return out;
  }

  bool compileLoop(const Loop& l, std::vector<Range> eff, PlanChild& pc) {
    PlanLoop loop;
    loop.lo = l.lo.eval(n_);
    loop.hi = l.hi.eval(n_);
    loop.reversed = l.reversed;
    loop.depth = static_cast<int>(eff.size());
    if (loop.lo > loop.hi) return false;  // zero-trip: never executes
    eff.push_back({loop.lo, loop.hi});

    std::vector<Range> memberships;
    for (const Child& ch : l.body) {
      std::optional<Compiled> cc = compileChild(ch, eff);
      if (!fail_.empty()) return false;
      if (!cc) continue;  // dropped child
      loop.hasOuterGuards |= !cc->child.outerGuards.empty();
      loop.children.push_back(std::move(cc->child));
      memberships.push_back(cc->membership);
    }
    if (loop.children.empty()) return false;  // body never executes anything

    loop.innermostAssignsOnly =
        std::all_of(loop.children.begin(), loop.children.end(),
                    [](const PlanChild& ch) { return !ch.isLoop; });
    buildSegments(loop, memberships);

    plan_->loops.push_back(std::move(loop));
    pc.index = static_cast<int>(plan_->loops.size()) - 1;
    pc.isLoop = true;
    return true;
  }

  // Split [lo, hi] at every membership boundary; each resulting segment has a
  // constant set of active children (in program order).  Segments with no
  // active children are discarded — no iteration of them ever runs a guard.
  static void buildSegments(PlanLoop& loop,
                            const std::vector<Range>& memberships) {
    std::vector<std::int64_t> cuts{loop.lo, loop.hi + 1};
    for (const Range& m : memberships) {
      if (m.lo > loop.lo) cuts.push_back(m.lo);
      if (m.hi < loop.hi) cuts.push_back(m.hi + 1);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      PlanSegment seg;
      seg.lo = cuts[i];
      seg.hi = cuts[i + 1] - 1;
      for (std::size_t m = 0; m < memberships.size(); ++m)
        if (memberships[m].lo <= seg.lo && seg.hi <= memberships[m].hi)
          seg.members.push_back(static_cast<int>(m));
      if (!seg.members.empty()) loop.segments.push_back(std::move(seg));
    }
  }

  bool compileStmt(const Assign& a, const std::vector<Range>& eff,
                   PlanChild& pc) {
    PlanStmt stmt;
    stmt.stmtId = a.id;
    stmt.seed = a.seed;
    stmt.depth = static_cast<int>(eff.size());
    for (const ArrayRef& r : a.rhs) {
      std::optional<PlanRef> ref = compileRef(r, eff);
      if (!ref) return false;
      stmt.reads.push_back(std::move(*ref));
    }
    std::optional<PlanRef> w = compileRef(a.lhs, eff);
    if (!w) return false;
    stmt.write = std::move(*w);

    std::uint64_t instances = 1;
    for (const Range& r : eff) instances *= r.trips();
    plan_->instrsPerStep += instances;
    plan_->readsPerStep += instances * a.rhs.size();
    plan_->maxReadsPerStmt = std::max(plan_->maxReadsPerStmt, a.rhs.size());
    plan_->maxDepth = std::max(plan_->maxDepth, stmt.depth);

    plan_->stmts.push_back(std::move(stmt));
    pc.index = static_cast<int>(plan_->stmts.size()) - 1;
    pc.isLoop = false;
    return true;
  }

  std::optional<PlanRef> compileRef(const ArrayRef& r,
                                    const std::vector<Range>& eff) {
    if (r.array < 0 || r.array >= static_cast<int>(p_.arrays.size())) {
      fail_ = "array id out of range";
      return std::nullopt;
    }
    const ArrayLayout& al = layout_.layoutOf(r.array);
    const auto& ext = extents_[static_cast<std::size_t>(r.array)];
    const int depth = static_cast<int>(eff.size());
    PlanRef ref;
    ref.coeffs.assign(static_cast<std::size_t>(depth), 0);
    ref.constTerm = al.base;
    for (std::size_t pos = 0; pos < r.subs.size(); ++pos) {
      if (pos >= al.strides.size() || pos >= ext.size()) {
        fail_ = "subscript rank exceeds array rank";
        return std::nullopt;
      }
      const std::int64_t stride = al.strides[pos];
      const Subscript& s = r.subs[pos];
      const std::int64_t off = s.offset.eval(n_);
      if (s.isConstant()) {
        if (boundsCheck_ && !(off >= 0 && off < ext[pos])) {
          fail_ = "constant subscript out of bounds";
          return std::nullopt;
        }
        ref.constTerm += stride * off;
        continue;
      }
      if (s.depth < 0 || s.depth >= depth) {
        fail_ = "subscript depth beyond nest";
        return std::nullopt;
      }
      const Range rg = eff[static_cast<std::size_t>(s.depth)];
      if (boundsCheck_ && !(rg.lo + off >= 0 && rg.hi + off < ext[pos])) {
        fail_ = "subscript out of bounds";
        return std::nullopt;
      }
      ref.constTerm += stride * off;
      ref.coeffs[static_cast<std::size_t>(s.depth)] += stride;
    }
    // Data-segment check over the statement's whole iteration box — replaces
    // the tree walker's per-access load/store checks (performed even with
    // boundsCheck off).  Address is affine, so extrema sit at box corners.
    std::int64_t minAddr = ref.constTerm;
    std::int64_t maxAddr = ref.constTerm;
    for (int d = 0; d < depth; ++d) {
      const std::int64_t c = ref.coeffs[static_cast<std::size_t>(d)];
      const Range rg = eff[static_cast<std::size_t>(d)];
      minAddr += c * (c >= 0 ? rg.lo : rg.hi);
      maxAddr += c * (c >= 0 ? rg.hi : rg.lo);
    }
    if (!(minAddr >= 0 && maxAddr + 8 <= layout_.totalBytes())) {
      fail_ = "access outside data segment";
      return std::nullopt;
    }
    return ref;
  }

  const Program& p_;
  const DataLayout& layout_;
  const std::int64_t n_;
  const bool boundsCheck_;
  std::vector<std::vector<std::int64_t>> extents_;
  std::unique_ptr<AccessPlan> plan_;
  std::string fail_;
};

// ---------------------------------------------------------------------------
// Execution.  The steady-state inner loop is pure pointer arithmetic: per
// read, one mix + one "addr += step"; per instance, one mix64 store.  All
// guard and bounds logic ran at compile time; sink delivery is batched into
// structure-of-arrays chunks of kBlockCapacity instances.
// ---------------------------------------------------------------------------

class PlanExecutor {
 public:
  static constexpr std::size_t kBlockCapacity = 4096;

  PlanExecutor(const AccessPlan& plan, const ExecOptions& opts,
               InstrSink* sink)
      : plan_(plan), sink_(sink) {
    result_.memory.assign(
        static_cast<std::size_t>(plan_.layout->totalBytes() / 8), 0);
    initializeMemory(*plan_.program, *plan_.layout, opts, result_.memory);
    ivs_.assign(static_cast<std::size_t>(plan_.maxDepth), 0);
    keep_.resize(plan_.loops.size());
    for (std::size_t i = 0; i < plan_.loops.size(); ++i)
      keep_[i].assign(plan_.loops[i].children.size(), 1);
    if (sink_ != nullptr) {
      // Chunk buffers sized from the plan's exact dynamic counts (capped at
      // one block plus the worst-case overshoot of a whole iteration).
      const std::uint64_t totalInstrs = plan_.instrsPerStep * plan_.timeSteps;
      const std::size_t instrCap =
          static_cast<std::size_t>(std::min<std::uint64_t>(
              totalInstrs, kBlockCapacity + plan_.stmts.size()));
      bStmt_.reserve(instrCap);
      bOff_.reserve(instrCap + 1);
      bWrites_.reserve(instrCap);
      const std::uint64_t totalReads = plan_.readsPerStep * plan_.timeSteps;
      bPool_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
          totalReads, static_cast<std::uint64_t>(instrCap) *
                          std::max<std::size_t>(plan_.maxReadsPerStmt, 1))));
    }
    bOff_.push_back(0);
  }

  ExecResult run() {
    for (std::uint64_t t = 0; t < plan_.timeSteps; ++t)
      for (const PlanChild& c : plan_.top) execChild(c);
    if (sink_ != nullptr) flushBlock();
    return std::move(result_);
  }

 private:
  struct HotRef {
    std::int64_t addr = 0;
    std::int64_t step = 0;
  };
  struct HotStmt {
    int stmtId = -1;
    std::uint64_t seed = 1;
    std::uint32_t rBegin = 0;  ///< read slots [rBegin, rEnd) per iteration
    std::uint32_t rEnd = 0;
  };

  void execChild(const PlanChild& c) {
    if (c.isLoop)
      execLoop(c.index);
    else
      execStmtSlow(plan_.stmts[static_cast<std::size_t>(c.index)]);
  }

  void execLoop(int loopIdx) {
    const PlanLoop& L = plan_.loops[static_cast<std::size_t>(loopIdx)];
    std::vector<std::uint8_t>& keepRow =
        keep_[static_cast<std::size_t>(loopIdx)];
    if (L.hasOuterGuards) {
      // Outer-variable guards are loop-invariant here: decide each child
      // once per loop entry instead of once per iteration.
      for (std::size_t ci = 0; ci < L.children.size(); ++ci) {
        std::uint8_t ok = 1;
        for (const PlanGuard& g : L.children[ci].outerGuards) {
          const std::int64_t v = ivs_[static_cast<std::size_t>(g.depth)];
          if (v < g.lo || v > g.hi) {
            ok = 0;
            break;
          }
        }
        keepRow[ci] = ok;
      }
    }
    if (L.innermostAssignsOnly) {
      execInnermost(L, keepRow);
      return;
    }
    const int nseg = static_cast<int>(L.segments.size());
    for (int s = L.reversed ? nseg - 1 : 0; L.reversed ? s >= 0 : s < nseg;
         L.reversed ? --s : ++s) {
      const PlanSegment& seg = L.segments[static_cast<std::size_t>(s)];
      const std::int64_t first = L.reversed ? seg.hi : seg.lo;
      const std::int64_t last = L.reversed ? seg.lo : seg.hi;
      const std::int64_t dir = L.reversed ? -1 : 1;
      for (std::int64_t v = first;; v += dir) {
        ivs_[static_cast<std::size_t>(L.depth)] = v;
        for (int m : seg.members)
          if (!L.hasOuterGuards || keepRow[static_cast<std::size_t>(m)])
            execChild(L.children[static_cast<std::size_t>(m)]);
        if (v == last) break;
      }
    }
  }

  HotRef rebase(const PlanRef& r, int ivIdx, std::int64_t vStart,
                std::int64_t dir) const {
    std::int64_t addr = r.constTerm;
    for (int d = 0; d < ivIdx; ++d)
      addr += r.coeffs[static_cast<std::size_t>(d)] *
              ivs_[static_cast<std::size_t>(d)];
    const std::int64_t innerCoeff = r.coeffs[static_cast<std::size_t>(ivIdx)];
    return {addr + innerCoeff * vStart, dir * innerCoeff};
  }

  void execInnermost(const PlanLoop& L,
                     const std::vector<std::uint8_t>& keepRow) {
    const int nseg = static_cast<int>(L.segments.size());
    for (int s = L.reversed ? nseg - 1 : 0; L.reversed ? s >= 0 : s < nseg;
         L.reversed ? --s : ++s) {
      const PlanSegment& seg = L.segments[static_cast<std::size_t>(s)];
      const std::int64_t vStart = L.reversed ? seg.hi : seg.lo;
      const std::int64_t dir = L.reversed ? -1 : 1;
      hotStmts_.clear();
      hotReads_.clear();
      hotWrites_.clear();
      for (int m : seg.members) {
        if (L.hasOuterGuards && !keepRow[static_cast<std::size_t>(m)])
          continue;
        const PlanStmt& st =
            plan_.stmts[static_cast<std::size_t>(
                L.children[static_cast<std::size_t>(m)].index)];
        HotStmt hs;
        hs.stmtId = st.stmtId;
        hs.seed = st.seed;
        hs.rBegin = static_cast<std::uint32_t>(hotReads_.size());
        for (const PlanRef& r : st.reads)
          hotReads_.push_back(rebase(r, L.depth, vStart, dir));
        hs.rEnd = static_cast<std::uint32_t>(hotReads_.size());
        hotWrites_.push_back(rebase(st.write, L.depth, vStart, dir));
        hotStmts_.push_back(hs);
      }
      if (hotStmts_.empty()) continue;
      const std::int64_t trips = seg.hi - seg.lo + 1;
      if (sink_ != nullptr)
        runSegment<true>(trips);
      else
        runSegment<false>(trips);
    }
  }

  // Per access the steady state is one load, one mix, and one in-place
  // "addr += step"; per instance one mix64 store.  Measured against
  // hand-written kernels of the same value semantics, this loop is within
  // ~5% of the mix-chain floor — variants that recompute addresses as
  // base + t*step or pre-expand address strips both measured slower here.
  template <bool Emit>
  void runSegment(std::int64_t trips) {
    std::uint64_t* mem = result_.memory.data();
    const HotStmt* stmts = hotStmts_.data();
    HotRef* reads = hotReads_.data();
    HotRef* writes = hotWrites_.data();
    const std::size_t numStmts = hotStmts_.size();
    for (std::int64_t t = 0; t < trips; ++t) {
      for (std::size_t si = 0; si < numStmts; ++si) {
        const HotStmt hs = stmts[si];
        std::uint64_t acc = hs.seed;
        for (std::uint32_t ri = hs.rBegin; ri < hs.rEnd; ++ri) {
          HotRef& hr = reads[ri];
          acc = mixCombine(acc,
                           mem[static_cast<std::uint64_t>(hr.addr) >> 3]);
          if constexpr (Emit) bPool_.push_back(hr.addr);
          hr.addr += hr.step;
        }
        HotRef& wr = writes[si];
        mem[static_cast<std::uint64_t>(wr.addr) >> 3] = mix64(acc);
        if constexpr (Emit) {
          bStmt_.push_back(hs.stmtId);
          bOff_.push_back(bPool_.size());
          bWrites_.push_back(wr.addr);
        }
        wr.addr += wr.step;
      }
      if constexpr (Emit)
        if (bStmt_.size() >= kBlockCapacity) flushBlock();
    }
    result_.instrCount += static_cast<std::uint64_t>(trips) * numStmts;
  }

  void execStmtSlow(const PlanStmt& st) {
    std::uint64_t* mem = result_.memory.data();
    std::uint64_t acc = st.seed;
    for (const PlanRef& r : st.reads) {
      const std::int64_t a = evalAddr(r, st.depth);
      acc = mixCombine(acc, mem[static_cast<std::uint64_t>(a) >> 3]);
      if (sink_ != nullptr) bPool_.push_back(a);
    }
    const std::int64_t w = evalAddr(st.write, st.depth);
    mem[static_cast<std::uint64_t>(w) >> 3] = mix64(acc);
    ++result_.instrCount;
    if (sink_ != nullptr) {
      bStmt_.push_back(st.stmtId);
      bOff_.push_back(bPool_.size());
      bWrites_.push_back(w);
      if (bStmt_.size() >= kBlockCapacity) flushBlock();
    }
  }

  std::int64_t evalAddr(const PlanRef& r, int depth) const {
    std::int64_t addr = r.constTerm;
    for (int d = 0; d < depth; ++d)
      addr += r.coeffs[static_cast<std::size_t>(d)] *
              ivs_[static_cast<std::size_t>(d)];
    return addr;
  }

  void flushBlock() {
    if (bStmt_.empty()) return;
    sink_->onBlock(InstrBlock{bStmt_, bOff_, bPool_, bWrites_});
    bStmt_.clear();
    bOff_.clear();
    bOff_.push_back(0);
    bPool_.clear();
    bWrites_.clear();
  }

  const AccessPlan& plan_;
  InstrSink* sink_;
  ExecResult result_;
  std::vector<std::int64_t> ivs_;
  std::vector<std::vector<std::uint8_t>> keep_;  ///< per loop, per child
  std::vector<HotRef> hotReads_;
  std::vector<HotRef> hotWrites_;
  std::vector<HotStmt> hotStmts_;
  // Structure-of-arrays chunk buffer; bOff_ carries the size()+1 fencepost.
  std::vector<int> bStmt_;
  std::vector<std::uint64_t> bOff_;
  std::vector<std::int64_t> bPool_;
  std::vector<std::int64_t> bWrites_;
};

}  // namespace

PlanCompileResult compilePlan(const Program& p, const DataLayout& layout,
                              const ExecOptions& opts) {
  PlanCompiler compiler(p, layout, opts);
  return compiler.compile();
}

ExecResult executePlan(const AccessPlan& plan, const ExecOptions& opts,
                       InstrSink* sink) {
  PlanExecutor exec(plan, opts, sink);
  return exec.run();
}

}  // namespace gcr
