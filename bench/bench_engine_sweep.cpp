// Engine session sweep: the fig9/fig10 measurement suite executed twice
// through one gcr::Engine — a cold pass that populates the content-addressed
// caches and a warm pass that replays the identical request stream.
//
// Three gates (all also recorded in BENCH_engine.json for CI):
//   * the warm pass must be at least 2x faster than the cold pass (the
//     session-cache amortization claim);
//   * every warm result must be byte-identical to its cold counterpart
//     (cached values are returned verbatim, never re-derived);
//   * the warm pass must be served from the caches (measurement hits > 0).
//
// The binary exits non-zero when any gate fails, so it doubles as a smoke
// test for the Engine in CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"

namespace {

using namespace gcr;

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepResult {
  std::vector<Measurement> measurements;
  std::vector<ReuseProfile> profiles;
  double seconds = 0;
};

struct AppRun {
  const char* name;
  std::int64_t n;
  std::uint64_t steps;
};

/// One full pass of the fig9/fig10 suite: four strategies per app measured
/// on the Origin 2000 model, plus the baseline reuse-distance profile.
SweepResult runSweep(Engine& engine, const std::vector<AppRun>& runs) {
  const MachineConfig machine = MachineConfig::origin2000();
  const Strategy strategies[] = {Strategy::NoOpt, Strategy::SgiLike,
                                 Strategy::Fused, Strategy::FusedRegrouped};
  SweepResult r;
  const double t0 = now();

  std::vector<MeasureTask> tasks;
  std::vector<ReuseTask> profTasks;
  for (const AppRun& run : runs) {
    Program p = apps::buildApp(run.name);
    for (Strategy s : strategies)
      tasks.push_back({engine.version(p, s), run.n, machine, run.steps});
    profTasks.push_back({engine.version(p, Strategy::NoOpt), run.n, run.steps});
  }
  r.measurements = engine.measureAll(tasks);
  r.profiles = engine.reuseProfilesOf(profTasks);
  r.seconds = now() - t0;
  return r;
}

bool identical(const Measurement& a, const Measurement& b) {
  // Cached results are returned verbatim, so even the wall-clock fields of
  // the cold simulation must survive the round trip bit-for-bit.
  return std::memcmp(&a.counts, &b.counts, sizeof a.counts) == 0 &&
         a.cycles == b.cycles &&
         a.memoryTrafficBytes == b.memoryTrafficBytes &&
         a.effectiveBandwidth == b.effectiveBandwidth &&
         a.wallSeconds == b.wallSeconds &&
         a.accessesPerSecond == b.accessesPerSecond;
}

bool identical(const ReuseProfile& a, const ReuseProfile& b) {
  if (a.accesses != b.accesses || a.distinctData != b.distinctData)
    return false;
  const int top =
      std::max(a.histogram.highestNonEmptyBin(), b.histogram.highestNonEmptyBin());
  for (int bin = 0; bin <= top; ++bin)
    if (a.histogram.binCount(bin) != b.histogram.binCount(bin)) return false;
  return true;
}

}  // namespace

int main() {
  using namespace gcr;
  bench::printHeader(
      "Engine session sweep: cold vs warm fig9/fig10 suite",
      "content-addressed caching must replay the sweep >=2x faster, "
      "byte-identically");

  const bool full = bench::fullSize();
  const std::vector<AppRun> runs = {{"ADI", full ? 1000 : 200, 1},
                                    {"Swim", full ? 321 : 96, 2},
                                    {"Tomcatv", full ? 257 : 96, 2},
                                    {"SP", full ? 28 : 16, 1}};

  Engine engine;  // local session: the stats below cover exactly this sweep
  const SweepResult cold = runSweep(engine, runs);
  const Engine::Stats coldStats = engine.stats();
  const SweepResult warm = runSweep(engine, runs);
  const Engine::Stats warmStats = engine.stats();

  bool byteIdentical =
      cold.measurements.size() == warm.measurements.size() &&
      cold.profiles.size() == warm.profiles.size();
  for (std::size_t i = 0; byteIdentical && i < cold.measurements.size(); ++i)
    byteIdentical = identical(cold.measurements[i], warm.measurements[i]);
  for (std::size_t i = 0; byteIdentical && i < cold.profiles.size(); ++i)
    byteIdentical = identical(cold.profiles[i], warm.profiles[i]);

  const double speedup = warm.seconds > 0 ? cold.seconds / warm.seconds : 0.0;
  const std::uint64_t warmMeasurementHits =
      warmStats.measurement.hits - coldStats.measurement.hits;
  const std::uint64_t warmProfileHits =
      warmStats.profile.hits - coldStats.profile.hits;

  const bool speedupOk = speedup >= 2.0;
  const bool hitsOk = warmMeasurementHits > 0 && warmProfileHits > 0;

  TextTable t({"pass", "tasks", "wall (s)", "measurement hits",
               "profile hits"});
  t.addRow({"cold", std::to_string(cold.measurements.size() +
                                   cold.profiles.size()),
            TextTable::fmt(cold.seconds, 3),
            std::to_string(coldStats.measurement.hits),
            std::to_string(coldStats.profile.hits)});
  t.addRow({"warm", std::to_string(warm.measurements.size() +
                                   warm.profiles.size()),
            TextTable::fmt(warm.seconds, 3),
            std::to_string(warmMeasurementHits),
            std::to_string(warmProfileHits)});
  std::printf("%s", t.render().c_str());
  std::printf("warm-over-cold speedup: %.1fx (gate: >=2x) — %s\n", speedup,
              speedupOk ? "ok" : "FAIL");
  std::printf("cold/warm results byte-identical: %s\n",
              byteIdentical ? "ok" : "FAIL");
  std::printf("warm pass served from cache: %s\n", hitsOk ? "ok" : "FAIL");

  {
    bench::ResultWriter out("engine");
    JsonWriter& j = out.json();
    j.field("cold_seconds", cold.seconds, 4);
    j.field("warm_seconds", warm.seconds, 4);
    j.field("warm_speedup", speedup, 2);
    j.field("byte_identical", byteIdentical);
    j.field("speedup_gate_ok", speedupOk);
    j.field("cache_hits", warmMeasurementHits + warmProfileHits);
    j.key("apps").beginArray();
    for (const AppRun& run : runs) {
      j.beginObject();
      j.field("app", run.name);
      j.field("n", run.n);
      j.endObject();
    }
    j.endArray();
    out.addEngineStats(warmStats);
    out.finish();
  }

  const bool ok = speedupOk && byteIdentical && hitsOk;
  std::printf("engine sweep verdict: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
