# CMake generated Testfile for 
# Source directory: /root/repo/tests/interp
# Build directory: /root/repo/build-review/tests/interp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/interp/test_interp[1]_include.cmake")
