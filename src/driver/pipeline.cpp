#include "driver/pipeline.hpp"

#include "xform/distribute.hpp"
#include "xform/interchange.hpp"
#include "xform/unroll_split.hpp"

namespace gcr {

PipelineResult optimize(const Program& in, const PipelineOptions& opts) {
  PipelineResult result;
  Program p = in.clone();

  if (opts.unrollSplit) {
    p = unrollSmallLoops(p, 8, &result.unrolledLoops);
    SplitResult split = splitConstantDims(p);
    p = std::move(split.program);
    result.arraysAfterSplit = static_cast<int>(p.arrays.size());
  }
  if (opts.orderLevels) orderLevelsForFusion(p, opts.fusionOptions.minN);
  if (opts.distribute)
    p = distributeLoops(p, opts.fusionOptions.minN, &result.distributedLoops);
  if (opts.fuse)
    p = fuseProgramLevels(p, opts.fusionLevels, opts.fusionOptions,
                          &result.fusionReport);
  if (opts.regroup) {
    result.regrouping =
        Regrouping::analyze(p, opts.regroupOptions, &result.regroupReport);
    result.regrouped = true;
  }
  result.program = std::move(p);
  return result;
}

ProgramVersion makeNoOpt(const Program& in) {
  return ProgramVersion{"NoOpt", in.clone(),
                        [](const Program& p, std::int64_t n) {
                          return contiguousLayout(p, n);
                        }};
}

ProgramVersion makeSgiLike(const Program& in, std::int64_t padBytes) {
  // Local optimization: unroll/split small dimensions (any production
  // compiler does), then fuse only within nests (minLevel = 1).
  PipelineOptions opts;
  opts.distribute = false;
  opts.fusionOptions.minLevel = 1;
  opts.regroup = false;
  PipelineResult r = optimize(in, opts);
  return ProgramVersion{"SGI-like", std::move(r.program),
                        [padBytes](const Program& p, std::int64_t n) {
                          return paddedLayout(p, n, padBytes);
                        }};
}

ProgramVersion makeFused(const Program& in, int levels, FusionOptions fopts) {
  PipelineOptions opts;
  opts.fusionLevels = levels;
  opts.fusionOptions = fopts;
  opts.regroup = false;
  PipelineResult r = optimize(in, opts);
  return ProgramVersion{"fused(" + std::to_string(levels) + ")",
                        std::move(r.program),
                        [](const Program& p, std::int64_t n) {
                          return contiguousLayout(p, n);
                        }};
}

ProgramVersion makeFusedRegrouped(const Program& in, int levels,
                                  FusionOptions fopts, RegroupOptions ropts) {
  PipelineOptions opts;
  opts.fusionLevels = levels;
  opts.fusionOptions = fopts;
  opts.regroupOptions = ropts;
  PipelineResult r = optimize(in, opts);
  // The layout factory owns the analysis result by value.
  Regrouping rg = std::move(r.regrouping);
  return ProgramVersion{"fused+regrouped", std::move(r.program),
                        [rg](const Program& p, std::int64_t n) {
                          return rg.layout(p, n);
                        }};
}

ProgramVersion makeRegroupedOnly(const Program& in, RegroupOptions ropts) {
  PipelineOptions opts;
  opts.fuse = false;
  opts.distribute = false;
  opts.regroupOptions = ropts;
  PipelineResult r = optimize(in, opts);
  Regrouping rg = std::move(r.regrouping);
  return ProgramVersion{"regrouped-only", std::move(r.program),
                        [rg](const Program& p, std::int64_t n) {
                          return rg.layout(p, n);
                        }};
}

}  // namespace gcr
