file(REMOVE_RECURSE
  "libgcr_ir.a"
)
