file(REMOVE_RECURSE
  "CMakeFiles/test_xform.dir/distribute_test.cpp.o"
  "CMakeFiles/test_xform.dir/distribute_test.cpp.o.d"
  "CMakeFiles/test_xform.dir/interchange_test.cpp.o"
  "CMakeFiles/test_xform.dir/interchange_test.cpp.o.d"
  "CMakeFiles/test_xform.dir/unroll_split_test.cpp.o"
  "CMakeFiles/test_xform.dir/unroll_split_test.cpp.o.d"
  "CMakeFiles/test_xform.dir/xform_property_test.cpp.o"
  "CMakeFiles/test_xform.dir/xform_property_test.cpp.o.d"
  "test_xform"
  "test_xform.pdb"
  "test_xform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
