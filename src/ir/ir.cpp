#include "ir/ir.hpp"

namespace gcr {

NodePtr makeNode(Loop l) { return std::make_unique<Node>(std::move(l)); }
NodePtr makeNode(Assign a) { return std::make_unique<Node>(std::move(a)); }

NodePtr cloneNode(const Node& n) {
  if (n.isAssign()) return makeNode(n.assign());
  const Loop& l = n.loop();
  Loop copy;
  copy.var = l.var;
  copy.lo = l.lo;
  copy.hi = l.hi;
  copy.reversed = l.reversed;
  copy.body.reserve(l.body.size());
  for (const Child& c : l.body) copy.body.push_back(cloneChild(c));
  return makeNode(std::move(copy));
}

Child cloneChild(const Child& c) {
  GCR_CHECK(c.node != nullptr, "child without node");
  return Child{cloneNode(*c.node), c.guards};
}

Program Program::clone() const {
  Program copy;
  copy.name = name;
  copy.arrays = arrays;
  copy.top.reserve(top.size());
  for (const Child& c : top) copy.top.push_back(cloneChild(c));
  return copy;
}

namespace {

void renumberNode(Node& n, int& next) {
  if (n.isAssign()) {
    n.assign().id = next++;
    return;
  }
  for (Child& c : n.loop().body) renumberNode(*c.node, next);
}

void countNode(const Node& n, int& total) {
  if (n.isAssign()) {
    ++total;
    return;
  }
  for (const Child& c : n.loop().body) countNode(*c.node, total);
}

template <typename NodeT, typename LoopT, typename AssignT>
void visitAssigns(NodeT& n, std::vector<LoopT*>& stack,
                  const std::function<void(AssignT&, const std::vector<LoopT*>&)>& fn) {
  if (n.isAssign()) {
    fn(n.assign(), stack);
    return;
  }
  auto& l = n.loop();
  stack.push_back(&l);
  for (auto& c : l.body) visitAssigns(*c.node, stack, fn);
  stack.pop_back();
}

}  // namespace

int Program::renumber() {
  int next = 0;
  for (Child& c : top) renumberNode(*c.node, next);
  return next;
}

int Program::numStatements() const {
  int total = 0;
  for (const Child& c : top) countNode(*c.node, total);
  return total;
}

void forEachAssign(
    const Program& p,
    const std::function<void(const Assign&, const std::vector<const Loop*>&)>&
        fn) {
  std::vector<const Loop*> stack;
  for (const Child& c : p.top)
    visitAssigns<const Node, const Loop, const Assign>(*c.node, stack, fn);
}

void forEachAssign(
    Program& p,
    const std::function<void(Assign&, const std::vector<Loop*>&)>& fn) {
  std::vector<Loop*> stack;
  for (Child& c : p.top) visitAssigns<Node, Loop, Assign>(*c.node, stack, fn);
}

namespace {
void visitLoops(const Node& n, int level,
                const std::function<void(const Loop&, int)>& fn) {
  if (!n.isLoop()) return;
  fn(n.loop(), level);
  for (const Child& c : n.loop().body) visitLoops(*c.node, level + 1, fn);
}
}  // namespace

void forEachLoop(const Program& p,
                 const std::function<void(const Loop&, int level)>& fn) {
  for (const Child& c : p.top) visitLoops(*c.node, 0, fn);
}

}  // namespace gcr
