// Trace sinks: consumers of the interpreter's dynamic instruction stream.
//
// One dynamic instruction = one executed statement instance, with the byte
// addresses it reads (in rhs order) and the one it writes.  Locality and
// cache analyses flatten this to an access stream (reads first, then the
// write, matching actual execution); the reuse-driven-execution study keeps
// instruction granularity.
//
// Two delivery granularities:
//   * onInstr  — one virtual call per statement instance (the tree-walking
//     interpreter's native granularity);
//   * onBlock  — one virtual call per structure-of-arrays chunk of ~4K
//     instances (the compiled plan engine's native granularity), amortizing
//     dispatch and enabling bulk appends.
// Every sink accepts both: InstrSink::onBlock has a default implementation
// that replays the block instance-by-instance into onInstr (the compatibility
// shim for legacy sinks), and the high-traffic sinks below override it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gcr {

/// A structure-of-arrays view over a chunk of consecutive statement
/// instances.  `readOffsets` carries size()+1 fencepost entries into
/// `readPool`, so instance i's reads are readPool[readOffsets[i] ..
/// readOffsets[i+1]).  `readPool` covers exactly the block's reads.
struct InstrBlock {
  std::span<const int> stmtIds;
  std::span<const std::uint64_t> readOffsets;
  std::span<const std::int64_t> readPool;
  std::span<const std::int64_t> writes;

  std::size_t size() const { return stmtIds.size(); }
  std::span<const std::int64_t> reads(std::size_t i) const {
    return readPool.subspan(
        static_cast<std::size_t>(readOffsets[i]),
        static_cast<std::size_t>(readOffsets[i + 1] - readOffsets[i]));
  }
};

class InstrSink {
 public:
  virtual ~InstrSink() = default;
  virtual void onInstr(int stmtId, std::span<const std::int64_t> readAddrs,
                       std::int64_t writeAddr) = 0;
  /// Blocked delivery.  The default replays the chunk through onInstr in
  /// instance order, so legacy sinks consume block producers unchanged.
  virtual void onBlock(const InstrBlock& b) {
    for (std::size_t i = 0; i < b.size(); ++i)
      onInstr(b.stmtIds[i], b.reads(i), b.writes[i]);
  }
};

/// Base for block-native sinks: implement onBlock only; single instances
/// arrive as one-element blocks (no allocation).
class InstrBlockSink : public InstrSink {
 public:
  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) final {
    const std::uint64_t offs[2] = {0, reads.size()};
    onBlock(InstrBlock{{&stmtId, 1}, {offs, 2}, reads, {&write, 1}});
  }
  void onBlock(const InstrBlock& b) override = 0;
};

/// Accumulates per-instance deliveries into ~capacity-instance blocks and
/// forwards them to a downstream sink's onBlock — converts an instance-
/// granularity producer (e.g. the tree walker) into a block producer.
/// flush() on destruction; call flush() earlier to bound latency.
class BlockBatcher final : public InstrSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit BlockBatcher(InstrSink* downstream,
                        std::size_t capacity = kDefaultCapacity)
      : downstream_(downstream), capacity_(capacity ? capacity : 1) {
    readOffsets_.push_back(0);
  }
  ~BlockBatcher() override { flush(); }

  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) override {
    stmtIds_.push_back(stmtId);
    readPool_.insert(readPool_.end(), reads.begin(), reads.end());
    readOffsets_.push_back(readPool_.size());
    writes_.push_back(write);
    if (stmtIds_.size() >= capacity_) flush();
  }
  void onBlock(const InstrBlock& b) override {
    flush();
    downstream_->onBlock(b);
  }

  void flush() {
    if (stmtIds_.empty()) return;
    downstream_->onBlock(
        InstrBlock{stmtIds_, readOffsets_, readPool_, writes_});
    stmtIds_.clear();
    readOffsets_.assign(1, 0);
    readPool_.clear();
    writes_.clear();
  }

 private:
  InstrSink* downstream_;
  std::size_t capacity_;
  std::vector<int> stmtIds_;
  std::vector<std::uint64_t> readOffsets_;
  std::vector<std::int64_t> readPool_;
  std::vector<std::int64_t> writes_;
};

/// Fan-out to several sinks.
class TeeSink final : public InstrSink {
 public:
  explicit TeeSink(std::vector<InstrSink*> sinks) : sinks_(std::move(sinks)) {}
  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) override {
    for (InstrSink* s : sinks_) s->onInstr(stmtId, reads, write);
  }
  void onBlock(const InstrBlock& b) override {
    for (InstrSink* s : sinks_) s->onBlock(b);
  }

 private:
  std::vector<InstrSink*> sinks_;
};

/// Counts instructions and memory references.
class CountingSink final : public InstrSink {
 public:
  void onInstr(int, std::span<const std::int64_t> reads,
               std::int64_t) override {
    ++instrs_;
    refs_ += reads.size() + 1;
  }
  void onBlock(const InstrBlock& b) override {
    instrs_ += b.size();
    refs_ += b.readPool.size() + b.size();
  }
  std::uint64_t instrs() const { return instrs_; }
  std::uint64_t refs() const { return refs_; }

 private:
  std::uint64_t instrs_ = 0;
  std::uint64_t refs_ = 0;
};

/// Compact in-memory instruction trace (structure-of-arrays): input of the
/// reuse-driven-execution simulator.
class InstrTrace final : public InstrSink {
 public:
  /// Read-pool offsets are 64-bit: a pooled-read count past 2^32 (a few
  /// billion instances) must extend the trace, not silently wrap.
  using ReadOffset = std::uint64_t;

  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) override {
    stmtIds_.push_back(stmtId);
    readOffsets_.push_back(static_cast<ReadOffset>(readPool_.size()));
    readPool_.insert(readPool_.end(), reads.begin(), reads.end());
    writes_.push_back(write);
  }

  /// Bulk append of a whole chunk: one offset rebase + four vector inserts
  /// instead of size() virtual calls.
  void onBlock(const InstrBlock& b) override {
    const ReadOffset base = static_cast<ReadOffset>(readPool_.size());
    stmtIds_.insert(stmtIds_.end(), b.stmtIds.begin(), b.stmtIds.end());
    readOffsets_.reserve(readOffsets_.size() + b.size());
    for (std::size_t i = 0; i < b.size(); ++i)
      readOffsets_.push_back(base + b.readOffsets[i]);
    readPool_.insert(readPool_.end(), b.readPool.begin(), b.readPool.end());
    writes_.insert(writes_.end(), b.writes.begin(), b.writes.end());
  }

  /// Pre-size for an expected instance and pooled-read count (upper bounds
  /// are fine), eliminating mid-run reallocation on large traces.
  void reserve(std::uint64_t expectedInstrs, std::uint64_t expectedReads) {
    stmtIds_.reserve(static_cast<std::size_t>(expectedInstrs));
    readOffsets_.reserve(static_cast<std::size_t>(expectedInstrs));
    writes_.reserve(static_cast<std::size_t>(expectedInstrs));
    readPool_.reserve(static_cast<std::size_t>(expectedReads));
  }

  std::size_t size() const { return stmtIds_.size(); }
  int stmtId(std::size_t i) const { return stmtIds_[i]; }
  std::int64_t writeAddr(std::size_t i) const { return writes_[i]; }
  std::span<const std::int64_t> reads(std::size_t i) const {
    const ReadOffset begin = readOffsets_[i];
    const ReadOffset end = i + 1 < readOffsets_.size()
                               ? readOffsets_[i + 1]
                               : static_cast<ReadOffset>(readPool_.size());
    return {readPool_.data() + begin, readPool_.data() + end};
  }

 private:
  std::vector<int> stmtIds_;
  std::vector<ReadOffset> readOffsets_;
  std::vector<std::int64_t> readPool_;
  std::vector<std::int64_t> writes_;
};

}  // namespace gcr
