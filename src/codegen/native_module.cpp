#include "codegen/native_module.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace gcr {
namespace {

// Materialize bytes to a private temp file; path valid until destruction.
class TempSo {
 public:
  explicit TempSo(const std::string& bytes) {
    const char* base = std::getenv("TMPDIR");
    std::string nameBuf = std::string(base != nullptr && *base != '\0'
                                          ? base
                                          : "/tmp") +
                          "/gcr-module-XXXXXX";
    fd_ = ::mkstemp(nameBuf.data());
    if (fd_ < 0) {
      error_ = std::string("mkstemp failed: ") + std::strerror(errno);
      return;
    }
    path_ = nameBuf;
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w =
          ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        error_ = std::string("write failed: ") + std::strerror(errno);
        return;
      }
      off += static_cast<std::size_t>(w);
    }
  }
  ~TempSo() {
    if (fd_ >= 0) ::close(fd_);
    if (!path_.empty()) (void)::unlink(path_.c_str());
  }
  TempSo(const TempSo&) = delete;
  TempSo& operator=(const TempSo&) = delete;

  const std::string& error() const { return error_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::string error_;
};

}  // namespace

std::unique_ptr<NativeModule> NativeModule::load(const std::string& soBytes,
                                                 std::string* error) {
  auto fail = [&](std::string why) -> std::unique_ptr<NativeModule> {
    if (error != nullptr) *error = std::move(why);
    return nullptr;
  };
  if (soBytes.empty()) return fail("empty shared-object image");
  TempSo tmp(soBytes);
  if (!tmp.error().empty()) return fail(tmp.error());

  std::unique_ptr<NativeModule> m(new NativeModule());
  m->handle_ = ::dlopen(tmp.path().c_str(), RTLD_NOW | RTLD_LOCAL);
  if (m->handle_ == nullptr) {
    const char* e = ::dlerror();
    return fail(std::string("dlopen failed: ") + (e != nullptr ? e : "?"));
  }
  // TempSo unlinks at scope exit; the mapping keeps the object alive.

  auto sym = [&](const char* name) -> void* {
    return ::dlsym(m->handle_, name);
  };
  auto* abi = reinterpret_cast<GcrNativeAbiFn>(sym("gcrn_abi"));
  auto* pcount =
      reinterpret_cast<GcrNativeParamCountFn>(sym("gcrn_param_count"));
  m->run_ = reinterpret_cast<GcrNativeRunFn>(sym("gcrn_run"));
  m->trace_ = reinterpret_cast<GcrNativeTraceFn>(sym("gcrn_trace"));
  if (abi == nullptr || pcount == nullptr || m->run_ == nullptr ||
      m->trace_ == nullptr)
    return fail("missing gcrn_* entry point");
  const std::int32_t gotAbi = abi();
  if (gotAbi != kNativeAbiVersion)
    return fail("ABI mismatch: artifact " + std::to_string(gotAbi) +
                ", host " + std::to_string(kNativeAbiVersion));
  m->paramCount_ = pcount();
  return m;
}

NativeModule::~NativeModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

}  // namespace gcr
