// Whole-program static verification: the aggregation layer behind
// `gcr-verify`.
//
// verifyProgram runs, over one program:
//   * the strict IR validator (ir/validate.hpp) — structural errors plus
//     analysis-hostile constructs;
//   * the affine dependence census (analysis/dependence.hpp) — every
//     same-array pair with a write is classified Independent / Dependent /
//     Unknown; Unknown pairs are surfaced (conservatively treated as
//     dependent by every transform, so they are notes, not errors);
//   * the per-pass legality checkers (fusion, interchange, distribution,
//     unroll-and-split) in consultation mode: what each pass would be
//     allowed to do on this program.
//
// All diagnostics come back in the greppable `program:loc:ref` format of
// ir/diagnostic.hpp; `gcr-verify --werror` escalates warnings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "ir/diagnostic.hpp"
#include "ir/ir.hpp"

namespace gcr {

struct VerifyOptions {
  std::int64_t minN = 16;
  /// Emit one note per surviving (Dependent/Unknown) pair, up to this many
  /// per program; 0 disables the per-pair notes (the census summary note is
  /// always emitted).
  int maxDependenceNotes = 0;
  /// Also run the per-pass legality checkers in consultation mode.
  bool consultPasses = true;
  std::int64_t maxPeel = 3;
};

struct VerifyResult {
  std::vector<Diagnostic> diags;
  DependenceSummary deps;
};

VerifyResult verifyProgram(const Program& p, const std::string& name,
                           const VerifyOptions& opts = {});

}  // namespace gcr
