# CMake generated Testfile for 
# Source directory: /root/repo/tests/driver
# Build directory: /root/repo/build-review/tests/driver
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/driver/test_driver[1]_include.cmake")
