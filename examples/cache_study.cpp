// Cache study: how does the benefit of the global strategy depend on the
// memory system?  Sweeps an application across cache hierarchies (the
// paper's two machines plus shrunken variants) and reports the speedup of
// fusion+regrouping at each point — the kind of study a performance
// engineer would run before adopting the transformations.
//
//   ./build/examples/cache_study [app] [n]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gcr/gcr.hpp"

using namespace gcr;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "ADI";
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 512;

  Program p = apps::buildApp(app);
  Engine engine;
  ProgramVersion noOpt = engine.version(p, Strategy::NoOpt);
  ProgramVersion optimized = engine.version(p, Strategy::FusedRegrouped);

  struct Point {
    const char* name;
    MachineConfig cfg;
  };
  const Point points[] = {
      {"Origin2000 (4MB L2)", MachineConfig::origin2000()},
      {"Octane (1MB L2)", MachineConfig::octane()},
      {"quarter-size caches", MachineConfig::origin2000().scaledDown(4)},
      {"sixteenth-size caches", MachineConfig::origin2000().scaledDown(16)},
  };

  std::printf("%s at n=%lld: speedup of fusion+regrouping by machine\n\n",
              app.c_str(), static_cast<long long>(n));
  TextTable t({"machine", "L2 misses (orig)", "L2 misses (opt)", "speedup"});
  // The Engine compiles each version's access plan once; the four machine
  // points replay it against different hierarchies.
  for (const Point& pt : points) {
    Measurement base = engine.measure(noOpt, n, pt.cfg);
    Measurement opt = engine.measure(optimized, n, pt.cfg);
    t.addRow({pt.name, std::to_string(base.counts.l2Misses),
              std::to_string(opt.counts.l2Misses),
              TextTable::fmtRatio(base.cycles / opt.cycles)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nreading: the smaller the cache relative to the working set, the "
      "more the\nbandwidth reduction matters — the paper's motivation in "
      "Section 1.\n");
  return 0;
}
