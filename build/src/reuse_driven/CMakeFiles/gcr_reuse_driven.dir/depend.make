# Empty dependencies file for gcr_reuse_driven.
# This may be replaced when dependencies are built.
