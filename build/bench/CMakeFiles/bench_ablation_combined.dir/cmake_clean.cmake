file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_combined.dir/bench_ablation_combined.cpp.o"
  "CMakeFiles/bench_ablation_combined.dir/bench_ablation_combined.cpp.o.d"
  "bench_ablation_combined"
  "bench_ablation_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
