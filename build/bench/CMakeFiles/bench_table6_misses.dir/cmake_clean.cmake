file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_misses.dir/bench_table6_misses.cpp.o"
  "CMakeFiles/bench_table6_misses.dir/bench_table6_misses.cpp.o.d"
  "bench_table6_misses"
  "bench_table6_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
