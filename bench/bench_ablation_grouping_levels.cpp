// Ablation: grouping granularity — multi-level regrouping (this paper's
// Section 3.1) vs element-only single-level regrouping (the authors' prior
// work) vs outer-dims-only grouping (the paper's SGI code-generator
// workaround: "grouped arrays up to the second innermost dimension").
#include "apps/registry.hpp"
#include "bench_util.hpp"

int main() {
  using namespace gcr;
  bench::printHeader(
      "Ablation: multi-level vs single-level vs skip-innermost regrouping",
      "Section 3.1 motivation + Section 4.1 SGI workaround");

  struct AppRun {
    const char* name;
    std::int64_t n;
    std::uint64_t steps;
  };
  const AppRun runs[] = {{"Swim", 321, 2}, {"SP", 26, 1}};
  const MachineConfig machine = MachineConfig::origin2000();

  Engine& engine = bench::sessionEngine();
  for (const AppRun& run : runs) {
    Program p = apps::buildApp(run.name);
    RegroupOptions elementOnly;
    elementOnly.innermostOnly = true;
    RegroupOptions outerOnly;
    outerOnly.skipInnermostDim = true;

    auto row = [&](const char* label, Strategy s, const VersionSpec& spec) {
      return bench::VersionRow{
          label, engine.measure(engine.version(p, s, spec), run.n, machine,
                                run.steps)};
    };
    std::vector<bench::VersionRow> rows;
    rows.push_back(row("fusion, no grouping", Strategy::Fused, {}));
    rows.push_back(row("element-level only", Strategy::FusedRegrouped,
                       {.regroupOptions = elementOnly}));
    rows.push_back(row("outer dims only (SGI workaround)",
                       Strategy::FusedRegrouped,
                       {.regroupOptions = outerOnly}));
    rows.push_back(row("multi-level (this paper)", Strategy::FusedRegrouped,
                       {}));
    bench::printFig10Panel(run.name, run.n, machine, rows);
  }
  bench::printEngineStats();
  return 0;
}
