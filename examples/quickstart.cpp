// Quickstart: the whole library on one toy program.
//
//   1. build a two-loop program with the IR builder;
//   2. measure its reuse distances (Figure 1 / Section 2.1);
//   3. fuse it (Section 2.3) and watch the long-distance reuses vanish;
//   4. regroup its arrays (Section 3) and inspect the new layout;
//   5. simulate both versions on the paper's Origin2000 cache hierarchy.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "gcr/gcr.hpp"

using namespace gcr;

int main() {
  // --- 1. A program in the Figure-5 input language:
  //   for i = 0, N-1:  A[i] = f(A[i])
  //   for i = 0, N-1:  B[i] = g(A[i])
  ProgramBuilder b("quickstart");
  const AffineN n = AffineN::N();
  ArrayId a = b.array("A", {n});
  ArrayId bb = b.array("B", {n});
  b.loop("i", 0, n - AffineN(1),
         [&](IxVar i) { b.assign(b.ref(a, {i}), {b.ref(a, {i})}); });
  b.loop("i", 0, n - AffineN(1),
         [&](IxVar i) { b.assign(b.ref(bb, {i}), {b.ref(a, {i})}); });
  Program p = b.take();
  std::printf("original program:\n%s\n", toString(p).c_str());

  // --- 2. Reuse distances at N = 4096: the second loop rereads A a whole
  // array-scan later, so those reuses sit at distance ~2N ("evadable" —
  // they grow with N and eventually miss in any cache).
  const std::int64_t size = 4096;
  Engine engine;  // session runtime: caches pipelines, plans and results
  ProgramVersion noOpt = engine.version(p, Strategy::NoOpt);
  ReuseProfile before = engine.reuseProfile(noOpt, size);
  std::printf("before fusion: %llu reuses at distance >= 1024\n",
              static_cast<unsigned long long>(
                  before.histogram.countAtLeast(1024)));

  // --- 3. Reuse-based loop fusion.
  FusionReport freport;
  Program fused = fuseProgram(p, {}, &freport);
  std::printf("\nfused program (%d fusion(s)):\n%s\n", freport.fusions,
              toString(fused).c_str());
  ProgramVersion fusedV = engine.version(p, Strategy::Fused);
  ReuseProfile after = engine.reuseProfile(fusedV, size);
  std::printf("after fusion: %llu reuses at distance >= 1024\n",
              static_cast<unsigned long long>(
                  after.histogram.countAtLeast(1024)));

  // --- 4. Data regrouping: A and B are now always accessed together, so
  // they interleave into an array of pairs.
  RegroupReport rreport;
  Regrouping rg = Regrouping::analyze(fused, {}, &rreport);
  DataLayout grouped = rg.layout(fused, size);
  std::printf("\nregrouping: %d partition(s); A stride %lld B stride %lld "
              "(interleaved)\n",
              rreport.partitionsFormed,
              static_cast<long long>(grouped.layoutOf(a).strides[0]),
              static_cast<long long>(grouped.layoutOf(bb).strides[0]));

  // --- 5. Cache simulation on the paper's machines.
  const std::int64_t big = 1 << 21;  // 2 * 16MB arrays >> 4MB L2
  Measurement m0 = engine.measure(noOpt, big, MachineConfig::origin2000());
  Measurement m1 = engine.measure(engine.version(p, Strategy::FusedRegrouped),
                                  big, MachineConfig::origin2000());
  std::printf("\nOrigin2000, %lld elements per array:\n",
              static_cast<long long>(big));
  std::printf("  original:          L2 misses %llu, cost %.0f cycles\n",
              static_cast<unsigned long long>(m0.counts.l2Misses), m0.cycles);
  std::printf("  fusion+regrouping: L2 misses %llu, cost %.0f cycles "
              "(speedup %.2fx)\n",
              static_cast<unsigned long long>(m1.counts.l2Misses), m1.cycles,
              m0.cycles / m1.cycles);
  return 0;
}
