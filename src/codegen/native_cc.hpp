// Host-compiler discovery and out-of-process compilation of emitted plan
// code to shared objects.
//
// Discovery ladder (first hit wins):
//   1. GCR_CC   — explicit override; if set but unusable, discovery FAILS
//                 rather than silently substituting another compiler, so a
//                 test or user pointing at a specific toolchain finds out.
//   2. CC       — the conventional environment variable.
//   3. cc, gcc, clang — probed in that order on PATH.
// A candidate is usable iff `<cc> --version` runs and prints something; its
// first output line becomes part of the compiler fingerprint.
//
// The fingerprint (version line + flags + machine architecture) is stored
// inside every CompiledPlan artifact and folded into its content address:
// artifacts produced by different compilers, flag sets, or architectures
// never collide in a shared store, and a store moved across machines simply
// recompiles.  For the same reason the flag set deliberately excludes
// -march=native: baking host-specific ISA extensions into a shareable
// artifact would trade portability for a speedup the plan code (pure
// integer recurrences) barely uses.
#pragma once

#include <string>

namespace gcr {

/// A discovered host C compiler (or the reason there is none).
struct NativeCompiler {
  bool found = false;
  std::string command;      ///< argv prefix, used verbatim in a shell command
  std::string versionLine;  ///< first line of `--version`
  std::string fingerprint;  ///< versionLine + flags + arch; part of the key
  std::string diagnostic;   ///< when !found: why discovery failed
};

/// Flags every native compile uses (also folded into the fingerprint).
inline constexpr const char* kNativeCompileFlags = "-O2 -shared -fPIC";

/// Run the discovery ladder.  Reads the environment on every call — callers
/// that want a stable answer (NativeRuntime) cache the result themselves, so
/// tests can vary GCR_CC between runtimes.
NativeCompiler discoverNativeCompiler();

struct NativeCompileResult {
  std::string soBytes;  ///< the shared object, on success
  std::string error;    ///< non-empty on failure (includes compiler stderr)
  bool ok() const { return error.empty(); }
};

/// Compile `source` (a C translation unit) to a shared object with
/// `<cc.command> -O2 -shared -fPIC`, entirely out of process via temp files;
/// returns the .so bytes.  Never throws; failures land in `error`.
NativeCompileResult compileNativeSource(const NativeCompiler& cc,
                                        const std::string& source);

}  // namespace gcr
