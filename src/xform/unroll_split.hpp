// Loop unrolling of small constant dimensions + array splitting
// (Section 4.1: "array splitting and loop unrolling, which eliminates data
// dimensions of a small constant size and loops that iterate those
// dimensions" — e.g. NAS/SP's u(5, nx, ny, nz) becomes five 3-D arrays;
// the paper's SP goes from 15 arrays to 42 this way).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/diagnostic.hpp"
#include "ir/ir.hpp"

namespace gcr {

/// Fully unroll every loop with constant bounds and trip count <= maxWidth
/// (guards on such loops must be constant too, else the loop is left alone).
Program unrollSmallLoops(const Program& in, std::int64_t maxWidth = 8,
                         int* count = nullptr);

/// Where each array of a split program came from.  `fixed` records, in split
/// order, the (dimension, index) pinned by each split; each dimension is in
/// the coordinates of the array *at the time of that split*.  To map a slice
/// index vector back to original coordinates, iterate `fixed` in reverse and
/// insert each index at its dimension.
struct ArrayOrigin {
  ArrayId original = -1;
  std::vector<std::pair<int, std::int64_t>> fixed;

  std::vector<std::int64_t> originalIndex(
      std::vector<std::int64_t> sliceIndex) const {
    for (auto it = fixed.rbegin(); it != fixed.rend(); ++it)
      sliceIndex.insert(sliceIndex.begin() + it->first, it->second);
    return sliceIndex;
  }
};

struct SplitResult {
  Program program;
  std::vector<ArrayOrigin> origins;  ///< one per array of `program`
};

/// Split every array dimension of constant extent <= maxExtent whose
/// subscripts are constant everywhere (run unrollSmallLoops first).  Applied
/// to a fixed point, so u[5][N][3] fully decomposes.
SplitResult splitConstantDims(const Program& in, std::int64_t maxExtent = 8,
                              int* count = nullptr);

/// Convenience: unroll then split to fixed point.
SplitResult unrollAndSplit(const Program& in, std::int64_t maxWidth = 8,
                           std::int64_t maxExtent = 8);

/// Unroll-and-split legality as structured diagnostics.  Both rewrites
/// preserve semantics whenever the pass performs them; the diagnostics
/// record which candidates the preconditions exclude (forcing one of these
/// would trip the pass's internal assertions):
///   symbolic-guard   a small-constant-trip loop carries a guard with
///                    symbolic bounds at its own depth — not unrollable
///                    (note; witness = {trip count});
///   mixed-subscript  an array dimension of small constant extent is
///                    subscripted non-constantly (or out of range) somewhere
///                    — not splittable (note; witness = {dim, extent}).
std::vector<Diagnostic> checkUnrollSplitLegal(
    const Program& in, std::int64_t maxWidth = 8, std::int64_t maxExtent = 8,
    const std::string& programName = "");

}  // namespace gcr
