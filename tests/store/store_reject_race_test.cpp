// Pins the cost and the safety of the read path's self-healing reject: a
// corrupt entry is unlinked only after re-checking that the path still
// names the inode that failed validation, so the residual window between
// "validation failed" and "unlink" can cost at most one extra recompute —
// it can never delete a fresh entry renamed in concurrently, and it can
// never surface wrong bytes (the checksums reject first).
//
// One deterministic single-process test pins the exact cost; fork-based
// stress tests then hammer the window itself: corruptor processes damage
// object files in place and trigger rejects while writer processes keep
// republishing the same keys.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "../common/subprocess.hpp"
#include "../common/temp_dir.hpp"
#include "store/store.hpp"

namespace gcr::store {
namespace {

Signature keyOf(std::uint64_t k) { return Signature{0x7100 + k, 0x51}; }

/// Deterministic payload per key: every writer writes the same bytes, so a
/// mixed or stale read is indistinguishable from a correct one and only a
/// *wrong* read can fail the comparison.
std::vector<std::uint8_t> payloadForKey(const Signature& sig) {
  const std::size_t size = 512 + static_cast<std::size_t>(sig.lo % 300);
  std::vector<std::uint8_t> bytes(size);
  for (std::size_t i = 0; i < size; ++i)
    bytes[i] = static_cast<std::uint8_t>((sig.lo * 131 + i * 7) & 0xFF);
  return bytes;
}

bool sameBytes(std::span<const std::uint8_t> a,
               std::span<const std::uint8_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::string objectPathOf(const std::string& dir, ArtifactKind kind,
                         const Signature& sig) {
  return dir + "/objects/" + sig.str() + "-" + artifactKindName(kind) +
         ".gcra";
}

/// Atomically replace the published object file with a copy whose payload
/// has one flipped byte (past the fixed header, so the entry still *looks*
/// like an entry and only the checksum validation can catch it).  The
/// damaged copy arrives by rename — published entries stay immutable
/// inodes, exactly like real bitrot restored from a bad backup or crash
/// debris; a reader holding a validated mapping is never mutated under.
/// False when the file is not there — benign during the stress runs, where
/// writers and rejecting readers unlink/rename concurrently.
bool corruptObjectFile(const std::string& dir, ArtifactKind kind,
                       const Signature& sig) {
  const std::string path = objectPathOf(dir, kind, sig);
  std::vector<unsigned char> bytes;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return false;
    unsigned char buf[4096];
    ssize_t got;
    while ((got = ::read(fd, buf, sizeof buf)) > 0)
      bytes.insert(bytes.end(), buf, buf + got);
    ::close(fd);
  }
  const std::size_t offset = 96;  // inside the payload for every test key
  if (bytes.size() <= offset) return false;
  bytes[offset] ^= 0xFF;
  const std::string tmp =
      path + ".corrupt." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool wrote =
      ::write(fd, bytes.data(), bytes.size()) ==
      static_cast<ssize_t>(bytes.size());
  ::close(fd);
  if (!wrote || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

TEST(StoreRejectRace, RejectCostsExactlyOneRecompute) {
  testing::ScopedTempDir dir("gcr-reject");
  ArtifactStore::Options opts;
  opts.dir = dir.path();
  opts.fsync = false;
  auto store = ArtifactStore::open(opts);
  ASSERT_NE(store, nullptr);

  const Signature key = keyOf(0);
  ASSERT_TRUE(store->put(ArtifactKind::Measurement, key, payloadForKey(key)));
  ASSERT_TRUE(corruptObjectFile(dir.path(), ArtifactKind::Measurement, key));

  // The corrupt entry is rejected (a miss, never wrong bytes) and healed
  // away, so the *next* lookup is a clean miss, not a repeated reject.
  EXPECT_FALSE(store->get(ArtifactKind::Measurement, key).has_value());
  EXPECT_EQ(store->counters().corruptRejected, 1u);
  EXPECT_FALSE(std::filesystem::exists(
      objectPathOf(dir.path(), ArtifactKind::Measurement, key)));
  EXPECT_FALSE(store->get(ArtifactKind::Measurement, key).has_value());
  EXPECT_EQ(store->counters().corruptRejected, 1u);

  // One recompute (republication) fully restores the key.
  ASSERT_TRUE(store->put(ArtifactKind::Measurement, key, payloadForKey(key)));
  auto entry = store->get(ArtifactKind::Measurement, key);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(sameBytes(entry->payload(), payloadForKey(key)));
}

constexpr int kWriters = 3;
constexpr int kCorruptors = 2;
constexpr int kIters = 60;
constexpr std::uint64_t kKeys = 4;

/// Writer child: republish every key round-robin and verify every read.
/// Return 0 on success; distinct codes name the violated invariant.
int writerChild(const std::string& dir, int child) {
  ArtifactStore::Options opts;
  opts.dir = dir;
  opts.fsync = false;
  auto store = ArtifactStore::open(opts);
  if (store == nullptr) return 10;
  for (int iter = 0; iter < kIters; ++iter) {
    const Signature key =
        keyOf((static_cast<std::uint64_t>(child) + iter) % kKeys);
    if (!store->put(ArtifactKind::Measurement, key, payloadForKey(key)))
      return 11;
    auto entry = store->get(ArtifactKind::Measurement, key);
    // nullopt is legal (a corruptor just damaged it); wrong bytes never are.
    if (entry.has_value() && !sameBytes(entry->payload(), payloadForKey(key)))
      return 12;
  }
  return 0;
}

/// Corruptor child: damage object files in place, then look them up — every
/// lookup must either reject (nullopt) or return fully correct bytes.
int corruptorChild(const std::string& dir, int child) {
  ArtifactStore::Options opts;
  opts.dir = dir;
  opts.fsync = false;
  auto store = ArtifactStore::open(opts);
  if (store == nullptr) return 20;
  for (int iter = 0; iter < kIters; ++iter) {
    const Signature key =
        keyOf((static_cast<std::uint64_t>(child) * 3 + iter) % kKeys);
    corruptObjectFile(dir, ArtifactKind::Measurement, key);
    auto entry = store->get(ArtifactKind::Measurement, key);
    if (entry.has_value() && !sameBytes(entry->payload(), payloadForKey(key)))
      return 21;
  }
  return 0;
}

TEST(StoreRejectRace, ConcurrentCorruptionNeverYieldsWrongBytes) {
  testing::ScopedTempDir dir("gcr-reject-mp");
  const std::string path = dir.path();

  // Seed every key so corruptors have something to damage from iteration 0.
  {
    ArtifactStore::Options opts;
    opts.dir = path;
    opts.fsync = false;
    auto store = ArtifactStore::open(opts);
    ASSERT_NE(store, nullptr);
    for (std::uint64_t k = 0; k < kKeys; ++k)
      ASSERT_TRUE(store->put(ArtifactKind::Measurement, keyOf(k),
                             payloadForKey(keyOf(k))));
  }

  const std::vector<int> status = testing::runInChildProcesses(
      kWriters + kCorruptors, [&path](int child) {
        return child < kWriters ? writerChild(path, child)
                                : corruptorChild(path, child - kWriters);
      });
  ASSERT_EQ(status.size(), static_cast<std::size_t>(kWriters + kCorruptors));
  for (std::size_t i = 0; i < status.size(); ++i)
    EXPECT_EQ(status[i], 0) << "child " << i;

  // Fresh entries survive: one republication per key must stick, and every
  // entry still on disk must validate (no half-healed debris).
  ArtifactStore::Options opts;
  opts.dir = path;
  auto store = ArtifactStore::open(opts);
  ASSERT_NE(store, nullptr);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(store->put(ArtifactKind::Measurement, keyOf(k),
                           payloadForKey(keyOf(k))));
    auto entry = store->get(ArtifactKind::Measurement, keyOf(k));
    ASSERT_TRUE(entry.has_value()) << "key " << k;
    EXPECT_TRUE(sameBytes(entry->payload(), payloadForKey(keyOf(k))));
  }
  for (const auto& e : store->scan()) EXPECT_TRUE(e.valid) << e.file;
}

TEST(StoreRejectRace, RejectUnlinkSparesConcurrentlyRenamedFreshEntry) {
  // Hammer the exact residual window: one process repeatedly corrupts and
  // triggers the reject-unlink, the other repeatedly renames fresh entries
  // into the same path.  The inode re-check inside get() must confine the
  // unlink to the corrupt inode — ending state: the key is either absent
  // (last act was a reject) or fully valid, and one put always restores it.
  testing::ScopedTempDir dir("gcr-reject-win");
  const std::string path = dir.path();
  const Signature key = keyOf(9);

  {
    ArtifactStore::Options opts;
    opts.dir = path;
    opts.fsync = false;
    auto store = ArtifactStore::open(opts);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(
        store->put(ArtifactKind::Measurement, key, payloadForKey(key)));
  }

  const std::vector<int> status =
      testing::runInChildProcesses(2, [&path, &key](int child) {
        ArtifactStore::Options opts;
        opts.dir = path;
        opts.fsync = false;
        auto store = ArtifactStore::open(opts);
        if (store == nullptr) return 30;
        for (int iter = 0; iter < kIters * 4; ++iter) {
          if (child == 0) {
            if (!store->put(ArtifactKind::Measurement, key,
                            payloadForKey(key)))
              return 31;
          } else {
            corruptObjectFile(path, ArtifactKind::Measurement, key);
            auto entry = store->get(ArtifactKind::Measurement, key);
            if (entry.has_value() &&
                !sameBytes(entry->payload(), payloadForKey(key)))
              return 32;
          }
        }
        return 0;
      });
  for (std::size_t i = 0; i < status.size(); ++i)
    EXPECT_EQ(status[i], 0) << "child " << i;

  ArtifactStore::Options opts;
  opts.dir = path;
  auto store = ArtifactStore::open(opts);
  ASSERT_NE(store, nullptr);
  auto before = store->get(ArtifactKind::Measurement, key);
  if (before.has_value())
    EXPECT_TRUE(sameBytes(before->payload(), payloadForKey(key)));
  ASSERT_TRUE(store->put(ArtifactKind::Measurement, key, payloadForKey(key)));
  auto after = store->get(ArtifactKind::Measurement, key);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(sameBytes(after->payload(), payloadForKey(key)));
}

}  // namespace
}  // namespace gcr::store
