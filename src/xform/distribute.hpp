// Loop distribution (Section 4.1 pre-pass).
//
// Fusion wants maximal freedom to regroup computation, so the pipeline first
// distributes every multi-statement loop into one loop per body statement
// wherever dependences allow.  Distribution of `for i {S1; S2}` into
// `for i S1; for i S2` is legal iff no dependence runs from an instance
// S2(i1) to a later instance S1(i2), i1 < i2 — such "backward" loop-carried
// dependences force the statements to stay in one loop.  Statements bound by
// a backward dependence are kept together with everything between them, so
// textual order is preserved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/diagnostic.hpp"
#include "ir/ir.hpp"

namespace gcr {

/// Returns a new program with loops maximally distributed at every level.
/// `count`, when given, receives the number of loops created by splitting.
Program distributeLoops(const Program& in, std::int64_t minN = 16,
                        int* count = nullptr);

/// Distribution legality as structured diagnostics: one note per statement
/// pair a backward loop-carried dependence binds together (rule
/// "backward-dependence", witness = {earlier member index, later member
/// index}).  distributeLoops never cuts between such a pair; a hand-written
/// distribution that does diverges under the execution engines.  An empty
/// result means every loop is fully distributable.
std::vector<Diagnostic> checkDistributeLegal(
    const Program& in, std::int64_t minN = 16,
    const std::string& programName = "");

}  // namespace gcr
