// Measurement harness: run a program version through the cache hierarchy
// and locality analyses — our stand-in for the R10K/R12K hardware counters.
//
// Two execution regimes:
//   * single measurement — measure()/reuseProfileOf(), unchanged semantics;
//   * parallel sweep — measureAll()/reuseProfilesOf() run a batch of
//     independent (version x size x machine) tasks on a fixed-size thread
//     pool (GCR_THREADS).  Task i always fills result slot i and every task
//     owns its simulator state, so results are bit-identical for any thread
//     count; only the wall-clock fields differ between runs.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "driver/pipeline.hpp"
#include "locality/evadable.hpp"
#include "locality/reuse_distance.hpp"

namespace gcr {

/// Knobs of the measurement engine.
struct MeasureOptions {
  /// Workers for batch APIs (including the calling thread).  0 selects
  /// GCR_THREADS / hardware_concurrency; 1 is strictly sequential.
  int threads = 0;
  /// Reuse-distance sampling rate in (0, 1].  1.0 (default) is the exact
  /// tracker; smaller rates switch reuseProfileOf() to the SHARDS-style
  /// SampledReuseTracker with distances and counts scaled by 1/rate.  All
  /// published tables are generated at rate 1.
  double sampleRate = 1.0;
};

struct Measurement {
  MissCounts counts;
  double cycles = 0;                 ///< CostModel cycles
  std::uint64_t memoryTrafficBytes = 0;
  double effectiveBandwidth = 0;     ///< useful bytes / transferred bytes

  // Analysis-throughput observability (not part of the simulated results:
  // these vary run to run and are excluded from determinism comparisons).
  double wallSeconds = 0;            ///< wall-clock time of the simulation
  double accessesPerSecond = 0;      ///< counts.refs / wallSeconds

  double speedupOver(const Measurement& base) const {
    return cycles > 0 ? base.cycles / cycles : 0.0;
  }
};

/// Simulate `version` at problem size n on `machine`.
Measurement measure(const ProgramVersion& version, std::int64_t n,
                    const MachineConfig& machine,
                    std::uint64_t timeSteps = 1,
                    const CostModel& cost = {});

/// One independent simulation of a parallel sweep.
struct MeasureTask {
  ProgramVersion version;
  std::int64_t n = 16;
  MachineConfig machine;
  std::uint64_t timeSteps = 1;
  CostModel cost = {};
};

/// Run every task (in parallel when opts.threads != 1); result i belongs to
/// tasks[i] regardless of thread count.
std::vector<Measurement> measureAll(const std::vector<MeasureTask>& tasks,
                                    const MeasureOptions& opts = {});

/// Element-granularity reuse-distance profile of a version.  With
/// opts.sampleRate < 1 the profile is the sampled estimate (see
/// locality/sampled_reuse.hpp); at rate 1 it is exact and bit-identical to
/// the historical output.
ReuseProfile reuseProfileOf(const ProgramVersion& version, std::int64_t n,
                            std::uint64_t timeSteps = 1,
                            const MeasureOptions& opts = {});

/// One reuse-profile task of a parallel sweep.
struct ReuseTask {
  ProgramVersion version;
  std::int64_t n = 16;
  std::uint64_t timeSteps = 1;
};

/// Batch reuseProfileOf with the same slot-per-task determinism as
/// measureAll.  Aggregate across tasks with mergeProfiles().
std::vector<ReuseProfile> reuseProfilesOf(const std::vector<ReuseTask>& tasks,
                                          const MeasureOptions& opts = {});

/// Per-statement-pair reuse statistics (for evadable-reuse classification).
void collectPairwise(const ProgramVersion& version, std::int64_t n,
                     PairwiseReuseCollector& collector,
                     std::uint64_t timeSteps = 1);

}  // namespace gcr
