// Figure 10, upper-right panel: Tomcatv — original / +fusion / +regrouping.
//
// Paper (513 x 513 on Origin2000): fusion alone degraded performance by 1%;
// the combined transformation reduced L1 misses 5%, L2 misses 20% and
// execution time 16% (data regrouping traded a 3% TLB increase on the real
// machine because of the SGI code-generator workaround — see the ablation
// bench for that knob).
#include "apps/registry.hpp"
#include "bench_util.hpp"

int main() {
  using namespace gcr;
  bench::printHeader(
      "Figure 10: Tomcatv — effect of transformations",
      "orig / +fusion / +regrouping; paper: fusion -1%, combined -16% time, "
      "-5% L1, -20% L2 at 513x513");

  Engine& engine = bench::sessionEngine();
  Program p = apps::buildApp("Tomcatv");
  const std::int64_t n = bench::fullSize() ? 513 : 320;
  const MachineConfig machine = MachineConfig::origin2000();

  std::vector<bench::VersionRow> rows = bench::measureVersions(
      {"original", "+ computation fusion", "+ data regrouping"},
      [&] {
        std::vector<MeasureTask> t;
        t.push_back({.version = engine.version(p, Strategy::NoOpt),
                     .n = n,
                     .machine = machine,
                     .timeSteps = 2});
        t.push_back({.version = engine.version(p, Strategy::Fused),
                     .n = n,
                     .machine = machine,
                     .timeSteps = 2});
        t.push_back({.version = engine.version(p, Strategy::FusedRegrouped),
                     .n = n,
                     .machine = machine,
                     .timeSteps = 2});
        return t;
      }());
  bench::printFig10Panel("Tomcatv", n, machine, rows);
  bench::writeVersionRowsJson("fig10_tomcatv", "Tomcatv", n, machine, rows);
  bench::printThroughput(rows);
  bench::printEngineStats();
  return 0;
}
