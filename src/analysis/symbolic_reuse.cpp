#include "analysis/symbolic_reuse.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "analysis/dependence.hpp"
#include "interp/interp.hpp"
#include "locality/sampled_reuse.hpp"
#include "support/assert.hpp"

namespace gcr {

namespace {

/// Symbolic mirror of static_reuse.cpp's VolumeModel: identical structure,
/// every int64 replaced by a SymExpr, every max by symMax.  Evaluating any
/// entry at a concrete n reproduces the numeric model's value exactly.
struct SymVolumeModel {
  std::int64_t minN = 16;
  std::map<const Loop*, SymExpr> iterVol;
  std::map<const Child*, SymExpr> childVol;
  SymExpr totalFoot;                ///< sum of per-array max-merged footprints
  std::vector<SymExpr> siteIters;   ///< dynamic accesses per site (per step)

  SymExpr trip(const RefSite& s, std::size_t depth) const {
    return symMax(symConst(0),
                  symAffine(s.actHi[depth] - s.actLo[depth] + AffineN{1}),
                  minN);
  }

  SymExpr refVolume(const RefSite& s, int rootDepth) const {
    SymExpr vol = symConst(1);
    for (const Subscript& sub : s.ref->subs) {
      if (sub.isConstant() || sub.depth < rootDepth) continue;
      vol = symMul(vol, symMax(symConst(1),
                               trip(s, static_cast<std::size_t>(sub.depth)),
                               minN));
    }
    return vol;
  }

  static SymVolumeModel build(const std::vector<RefSite>& sites,
                              std::int64_t minN) {
    SymVolumeModel m;
    m.minN = minN;
    m.siteIters.reserve(sites.size());
    using Foot = std::map<ArrayId, SymExpr>;
    Foot arrayFoot;
    std::map<const Loop*, Foot> loopFoot;
    std::map<const Child*, Foot> childFoot;
    for (const RefSite& s : sites) {
      SymExpr iters = symConst(1);
      for (std::size_t d = 0; d < s.stack.size(); ++d)
        iters = symMul(iters, m.trip(s, d));
      m.siteIters.push_back(iters);

      auto bump = [&](Foot& f, const SymExpr& v) {
        auto [it, fresh] = f.emplace(s.array, v);
        if (!fresh) it->second = symMax(it->second, v, minN);
      };
      bump(arrayFoot, m.refVolume(s, 0));
      for (std::size_t k = 0; k < s.stack.size(); ++k)
        bump(loopFoot[s.stack[k]], m.refVolume(s, static_cast<int>(k) + 1));
      for (std::size_t k = 0; k < s.childPath.size(); ++k)
        bump(childFoot[s.childPath[k]], m.refVolume(s, static_cast<int>(k)));
    }
    auto totalOf = [](const Foot& f) {
      SymExpr sum = symConst(0);
      for (const auto& [a, v] : f) sum = symAdd(sum, v);
      return sum;
    };
    for (const auto& [l, f] : loopFoot) m.iterVol[l] = totalOf(f);
    for (const auto& [c, f] : childFoot) m.childVol[c] = totalOf(f);
    m.totalFoot = totalOf(arrayFoot);
    return m;
  }

  SymExpr volOfChild(const Child* c) const {
    const auto it = childVol.find(c);
    return it == childVol.end() ? symConst(0) : it->second;
  }
};

/// Replay the site collector's guard narrowing (dependence.cpp
/// SiteCollector::visitChild) and report whether any guard was incomparable
/// with the enclosing range — the case the collector silently
/// over-approximates, which a closed-form volume cannot absorb.
bool hasIncomparableGuard(const RefSite& s, std::int64_t minN) {
  std::vector<AffineN> lo, hi;
  for (std::size_t k = 0; k < s.childPath.size(); ++k) {
    for (const GuardSpec& g : s.childPath[k]->guards) {
      const auto d = static_cast<std::size_t>(g.depth);
      if (d >= lo.size()) continue;
      const bool loComparable = definitelyLessEq(lo[d], g.lo, minN) ||
                                definitelyLessEq(g.lo, lo[d], minN);
      const bool hiComparable = definitelyLessEq(g.hi, hi[d], minN) ||
                                definitelyLessEq(hi[d], g.hi, minN);
      if (!loComparable || !hiComparable) return true;
      if (definitelyLessEq(lo[d], g.lo, minN)) lo[d] = g.lo;
      if (definitelyLessEq(g.hi, hi[d], minN)) hi[d] = g.hi;
    }
    if (k < s.stack.size()) {
      lo.push_back(s.stack[k]->lo);
      hi.push_back(s.stack[k]->hi);
    }
  }
  return false;
}

/// Per-site candidate accumulator: the final distance is min over all
/// offered formulas; the class label is the candidate minimizing the value
/// at minN (first offer wins ties), mirroring the numeric offer() order.
struct SiteCandidates {
  std::vector<SymExpr> distances;
  std::int64_t bestAtMinN = std::numeric_limits<std::int64_t>::max();
  ReuseClass cls = ReuseClass::Cold;
  int carryLevel = -1;

  void offer(ReuseClass c, int level, SymExpr dist, std::int64_t minN) {
    const std::int64_t v = dist.eval(minN);
    if (v < bestAtMinN) {
      bestAtMinN = v;
      cls = c;
      carryLevel = level;
    }
    distances.push_back(std::move(dist));
  }
};

/// One site's mass at a concrete (n, t): the shared materialization behind
/// evaluate/missRate.
struct MassEntry {
  std::uint64_t dist = 0;
  std::uint64_t count = 0;
  bool evadable = false;
};

struct Materialized {
  std::vector<MassEntry> mass;
  std::uint64_t accesses = 0;
  std::uint64_t cold = 0;
  std::uint64_t bailedAccesses = 0;
};

std::uint64_t clampCount(std::int64_t v) {
  return v < 0 ? 0 : static_cast<std::uint64_t>(v);
}

Materialized materialize(const SymbolicReuseProfile& p, std::int64_t n,
                         std::uint64_t timeSteps) {
  GCR_CHECK(n >= p.minN, "evaluating a symbolic profile below its minN");
  GCR_CHECK(timeSteps >= 1, "timeSteps must be at least 1");
  Materialized out;
  const std::uint64_t t = timeSteps;
  const std::uint64_t footDist =
      p.footprint.valid() ? clampCount(p.footprint.eval(n)) : 0;
  const bool footEvadable =
      p.footprint.valid() &&
      p.footprint.degreeInN().value_or(1) > 0;  // footprints grow with N
  for (std::size_t i = 0; i < p.perSite.size(); ++i) {
    const SymbolicSiteProfile& e = p.perSite[i];
    const std::uint64_t c = clampCount(e.count.valid() ? e.count.eval(n) : 0);
    if (e.bailout != SymbolicBailout::None) {
      out.bailedAccesses += c * t;
      continue;
    }
    out.accesses += c * t;
    if (!e.distance.valid()) {  // cold: first pass first-touches; passes
                                // 2..T re-touch at ~whole-program footprint
      out.cold += c;
      if (t > 1 && c > 0)
        out.mass.push_back({footDist, c * (t - 1), footEvadable});
      continue;
    }
    const std::uint64_t d = clampCount(e.distance.eval(n));
    if (c > 0) out.mass.push_back({d, c * t, e.evadable});
  }
  return out;
}

}  // namespace

const char* symbolicBailoutName(SymbolicBailout b) {
  switch (b) {
    case SymbolicBailout::None: return "none";
    case SymbolicBailout::SignIndeterminateDelta:
      return "sign-indeterminate-delta";
    case SymbolicBailout::IncomparableGuard: return "incomparable-guard";
  }
  return "?";
}

std::uint64_t SymbolicReuseProfile::bailedSites() const {
  std::uint64_t n = 0;
  for (const SymbolicSiteProfile& e : perSite)
    if (e.bailout != SymbolicBailout::None) ++n;
  return n;
}

std::uint64_t SymbolicReuseProfile::impreciseSites() const {
  std::uint64_t n = 0;
  for (const SymbolicSiteProfile& e : perSite)
    if (e.imprecise) ++n;
  return n;
}

std::map<std::string, std::uint64_t> SymbolicReuseProfile::bailoutCounts()
    const {
  std::map<std::string, std::uint64_t> out;
  for (const SymbolicSiteProfile& e : perSite)
    if (e.bailout != SymbolicBailout::None)
      ++out[symbolicBailoutName(e.bailout)];
  return out;
}

SymbolicReuseProfile analyzeSymbolicReuse(const Program& p,
                                          const SymbolicReuseOptions& o) {
  const std::int64_t minN = o.minN;
  SymbolicReuseProfile out;
  out.minN = minN;

  const std::vector<RefSite> sites = collectRefSites(p, minN);
  const std::size_t S = sites.size();
  const SymVolumeModel m = SymVolumeModel::build(sites, minN);
  out.footprint = m.totalFoot;

  // Per-statement operand positions, for the hybrid tracer's attribution.
  std::unordered_map<int, int> nextOperand;
  out.sites.reserve(S);
  for (const RefSite& s : sites) {
    SymbolicSiteInfo info;
    info.stmtId = s.stmtId;
    info.array = s.array;
    info.isWrite = s.isWrite;
    info.operand = nextOperand[s.stmtId]++;
    info.loc = s.loc;
    info.text = s.text;
    out.sites.push_back(std::move(info));
  }

  out.perSite.assign(S, {});
  std::vector<SiteCandidates> cands(S);

  // Guard replay: a site whose active range was over-approximated has no
  // trustworthy closed-form volume anywhere it appears.
  for (std::size_t i = 0; i < S; ++i)
    if (hasIncomparableGuard(sites[i], minN))
      out.perSite[i].bailout = SymbolicBailout::IncomparableGuard;

  auto bail = [&](std::size_t i) {
    if (out.perSite[i].bailout == SymbolicBailout::None)
      out.perSite[i].bailout = SymbolicBailout::SignIndeterminateDelta;
  };

  auto carryCandidate = [&](std::size_t sink, const RefSite& s, int level,
                            SymExpr delta) {
    const Loop* l = s.stack[static_cast<std::size_t>(level)];
    const auto it = m.iterVol.find(l);
    const SymExpr vol = it == m.iterVol.end() ? symConst(1) : it->second;
    cands[sink].offer(
        ReuseClass::LoopCarried, level,
        symMax(symConst(1), symMul(std::move(delta), vol), minN), minN);
  };

  // The same all-pairs candidate scan as estimateReuseProfile(), with the
  // n/2n evaluations replaced by symbolic sign decisions over n >= minN.
  for (std::size_t i = 0; i < S; ++i) {
    for (std::size_t j = i; j < S; ++j) {
      const RefSite& a = sites[i];
      const RefSite& b = sites[j];
      if (a.array != b.array) continue;
      const Dependence dep = analyzeDependence(a, b, minN);
      if (dep.answer == DepAnswer::Independent) continue;
      const bool unknown = dep.answer == DepAnswer::Unknown;

      bool decided = false;
      bool bailed = false;
      for (int level = 0; level < dep.commonLevels && !decided; ++level) {
        const auto& d = dep.deltaN[static_cast<std::size_t>(level)];
        if (!d.has_value()) {
          // Unconstrained enclosing loop: the previous iteration re-touches
          // the element — both sites can treat it as their source.
          carryCandidate(j, b, level, symConst(1));
          out.perSite[j].imprecise |= unknown;
          if (i != j) {
            carryCandidate(i, a, level, symConst(1));
            out.perSite[i].imprecise |= unknown;
          }
          continue;  // same-iteration continuation explored below
        }
        if (*d == AffineN{0}) continue;
        if (definitelyLess(AffineN{0}, *d, minN)) {
          carryCandidate(j, b, level, symAffine(*d));
          out.perSite[j].imprecise |= unknown;
          decided = true;
        } else if (definitelyLess(*d, AffineN{0}, minN)) {
          carryCandidate(i, a, level, symAffine(-*d));
          out.perSite[i].imprecise |= unknown;
          decided = true;
        } else {
          // The delta changes sign (or crosses zero) within n >= minN: the
          // nearest-source selection flips between sizes mid-level, which
          // no single per-site formula expresses.  Both endpoints bail.
          bail(i);
          bail(j);
          bailed = true;
          break;
        }
      }
      if (decided || bailed || i == j) continue;

      if (a.stack == b.stack) {
        cands[j].offer(ReuseClass::SameIteration, -1,
                       symConst(2 * (b.order - a.order)), minN);
        out.perSite[j].imprecise |= unknown;
        continue;
      }
      // Cross-unit: sites diverge below the common nest.
      const int cl = dep.commonLevels;
      const std::vector<Child>& context =
          cl == 0 ? p.top : a.stack[static_cast<std::size_t>(cl - 1)]->body;
      const Child* ca = a.childPath[static_cast<std::size_t>(cl)];
      const Child* cb = b.childPath[static_cast<std::size_t>(cl)];
      std::size_t ia = context.size(), ib = context.size();
      for (std::size_t k = 0; k < context.size(); ++k) {
        if (&context[k] == ca) ia = k;
        if (&context[k] == cb) ib = k;
      }
      if (ia >= context.size() || ib >= context.size() || ia == ib) continue;
      const std::size_t lo = std::min(ia, ib), hi = std::max(ia, ib);
      const std::size_t sink = ia < ib ? j : i;
      SymExpr vol = symConst(0);
      for (std::size_t k = lo + 1; k < hi; ++k)
        vol = symAdd(vol, m.volOfChild(&context[k]));
      vol = symAdd(vol, symFloorDiv(symAdd(m.volOfChild(ca),
                                           m.volOfChild(cb)),
                                    2));
      cands[sink].offer(ReuseClass::CrossUnit, -1,
                        symMax(symConst(1), vol, minN), minN);
      out.perSite[sink].imprecise |= unknown;
    }
  }

  // Fold candidates into per-site formulas.
  for (std::size_t i = 0; i < S; ++i) {
    SymbolicSiteProfile& e = out.perSite[i];
    e.count = m.siteIters[i];
    if (e.bailout != SymbolicBailout::None) {
      e.cls = cands[i].cls;  // informational; no formula is published
      e.carryLevel = cands[i].carryLevel;
      continue;
    }
    if (cands[i].distances.empty()) {
      e.cls = ReuseClass::Cold;
      continue;
    }
    e.cls = cands[i].cls;
    e.carryLevel = cands[i].carryLevel;
    SymExpr dist = cands[i].distances[0];
    for (std::size_t k = 1; k < cands[i].distances.size(); ++k)
      dist = symMin(std::move(dist), cands[i].distances[k], minN);
    e.degree = dist.degreeInN();
    if (e.degree.has_value()) {
      e.evadable = *e.degree > 0;
    } else {
      // Indeterminate growth class: fall back to the numeric test at the
      // domain edge (the default StaticReuseOptions growth factor).
      const std::int64_t d1 = dist.eval(minN);
      const std::int64_t d2 = dist.eval(2 * minN);
      e.evadable = d1 > 0 && static_cast<double>(d2) >
                                 1.5 * static_cast<double>(d1);
    }
    e.distance = std::move(dist);
  }
  return out;
}

SymbolicEvaluation evaluateSymbolicProfile(const SymbolicReuseProfile& p,
                                           std::int64_t n,
                                           std::uint64_t timeSteps) {
  const Materialized m = materialize(p, n, timeSteps);
  SymbolicEvaluation ev;
  ev.accesses = m.accesses;
  ev.cold = m.cold;
  ev.bailedAccesses = m.bailedAccesses;
  for (const MassEntry& e : m.mass) {
    ev.histogram.add(e.dist, e.count);
    ev.totalReuses += e.count;
    if (e.evadable) ev.evadableReuses += e.count;
  }
  return ev;
}

double symbolicMissRate(const SymbolicReuseProfile& p, std::uint64_t capacity,
                        std::int64_t n, std::uint64_t timeSteps) {
  const Materialized m = materialize(p, n, timeSteps);
  std::uint64_t total = 0, missed = 0;
  for (const MassEntry& e : m.mass) {
    total += e.count;
    if (e.dist >= capacity) missed += e.count;
  }
  return total ? static_cast<double>(missed) / static_cast<double>(total)
               : 0.0;
}

namespace {

/// Dynamic per-site attribution: every access flows through one shared
/// (optionally SHARDS-sampled) tracker so distances are exact, and the
/// resulting mass is attributed to sites by (statement id, operand
/// position) — the same order collectRefSites() enumerates.
class SiteAttributionSink final : public InstrSink {
 public:
  struct PerSite {
    std::uint64_t accesses = 0;  ///< true count, sampled or not
    std::uint64_t cold = 0;      ///< scaled by 1/rate under sampling
    Log2Histogram hist;          ///< scaled finite reuse distances
  };

  SiteAttributionSink(const SymbolicReuseProfile& p, double rate)
      : tracker_(rate) {
    for (std::size_t i = 0; i < p.sites.size(); ++i) {
      const SymbolicSiteInfo& s = p.sites[i];
      std::vector<int>& v = bySite_[s.stmtId];
      if (static_cast<int>(v.size()) <= s.operand)
        v.resize(static_cast<std::size_t>(s.operand) + 1, -1);
      v[static_cast<std::size_t>(s.operand)] = static_cast<int>(i);
    }
    perSite_.resize(p.sites.size());
  }

  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) override {
    const auto it = bySite_.find(stmtId);
    const std::vector<int>* v = it == bySite_.end() ? nullptr : &it->second;
    auto siteOf = [&](std::size_t operand) {
      return v != nullptr && operand < v->size() ? (*v)[operand] : -1;
    };
    for (std::size_t k = 0; k < reads.size(); ++k) touch(siteOf(k), reads[k]);
    touch(siteOf(reads.size()), write);
  }

  const PerSite& site(std::size_t i) const { return perSite_[i]; }

 private:
  void touch(int site, std::int64_t addr) {
    const std::uint64_t d = tracker_.access(addr / 8);  // element granularity
    if (site < 0) return;
    PerSite& s = perSite_[static_cast<std::size_t>(site)];
    ++s.accesses;
    if (d == SampledReuseTracker::kNotSampled) return;
    if (d == SampledReuseTracker::kCold) {
      s.cold += tracker_.countScale();
      return;
    }
    s.hist.add(d, tracker_.countScale());
  }

  SampledReuseTracker tracker_;
  std::unordered_map<int, std::vector<int>> bySite_;
  std::vector<PerSite> perSite_;
};

}  // namespace

SymbolicEvaluation evaluateHybridProfile(const SymbolicReuseProfile& p,
                                         const Program& program,
                                         const DataLayout& layout,
                                         std::int64_t n,
                                         std::uint64_t timeSteps,
                                         const HybridOptions& o) {
  SymbolicEvaluation ev = evaluateSymbolicProfile(p, n, timeSteps);
  if (p.fullySymbolic()) return ev;

  SiteAttributionSink sink(p, o.sampleRate);
  ExecOptions eo;
  eo.n = n;
  eo.timeSteps = timeSteps;
  execute(program, layout, eo, &sink);

  ev.bailedAccesses = 0;  // replace the trip-count estimate with measurement
  for (std::size_t i = 0; i < p.perSite.size(); ++i) {
    if (p.perSite[i].bailout == SymbolicBailout::None) continue;
    const SiteAttributionSink::PerSite& m = sink.site(i);
    ev.bailedAccesses += m.accesses;
    ev.accesses += m.accesses;
    ev.cold += m.cold;
    ev.totalReuses += m.hist.totalFinite();
    ev.histogram.merge(m.hist);
  }
  return ev;
}

}  // namespace gcr
