// Umbrella header: the public API of the gcr (global cache reuse) library.
//
// Layers, bottom-up:
//   ir/        the loop-program input language (Figure 5, multi-dimensional)
//   interp/    exact interpreter + dynamic traces + data layouts
//   locality/  reuse-distance analysis, evadable-reuse classification
//   cachesim/  set-associative caches, TLB, machine configs, cost model
//   reuse_driven/  the Section 2.2 limit study (Figure 2 algorithm)
//   xform/     pre-passes: distribution, unrolling, array splitting
//   analysis/  static dependence analysis, legality checking, reuse
//              profile estimation (gcr-verify)
//   fusion/    reuse-based loop fusion (Figure 6)
//   regroup/   multi-level data regrouping (Figures 7-8)
//   driver/    the full pipeline, program versions, measurement harness
//   store/     persistent content-addressed artifact store (the disk
//              cache tier: crash-safe publication, mmap zero-copy loads)
//   engine/    the session runtime: content-addressed caching + async
//              batch scheduling behind one API (gcr::Engine)
//   apps/      the paper's benchmark programs (Figure 9)
#pragma once

#include "analysis/adversarial.hpp"
#include "analysis/dependence.hpp"
#include "analysis/legality.hpp"
#include "analysis/static_reuse.hpp"
#include "analysis/symbolic_reuse.hpp"
#include "analysis/symexpr.hpp"
#include "apps/registry.hpp"
#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "cachesim/topology.hpp"
#include "driver/measure.hpp"
#include "driver/pipeline.hpp"
#include "engine/engine.hpp"
#include "engine/future.hpp"
#include "engine/lru_cache.hpp"
#include "engine/signature.hpp"
#include "fusion/align.hpp"
#include "fusion/atoms.hpp"
#include "fusion/fusion.hpp"
#include "fusion/legal.hpp"
#include "interp/interp.hpp"
#include "interp/layout.hpp"
#include "interp/trace.hpp"
#include "ir/builder.hpp"
#include "ir/diagnostic.hpp"
#include "ir/ir.hpp"
#include "ir/print.hpp"
#include "ir/stats.hpp"
#include "ir/validate.hpp"
#include "interp/plan.hpp"
#include "interp/schedule.hpp"
#include "locality/evadable.hpp"
#include "locality/multicore.hpp"
#include "locality/reuse_distance.hpp"
#include "regroup/regroup.hpp"
#include "reuse_driven/reuse_driven.hpp"
#include "store/codec.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "support/affine.hpp"
#include "support/serialize.hpp"
#include "support/histogram.hpp"
#include "support/table.hpp"
#include "xform/distribute.hpp"
#include "xform/interchange.hpp"
#include "xform/unroll_split.hpp"
