# Empty dependencies file for bench_sec22_evadable.
# This may be replaced when dependencies are built.
