#include "apps/sweep3d.hpp"

#include "ir/builder.hpp"

namespace gcr::apps {

Program sweep3dProgram() {
  ProgramBuilder b("Sweep3D");
  const AffineN n = AffineN::N();
  const AffineN ext = n + AffineN(2);
  ArrayId flux = b.array("flux", {ext, ext, ext});
  ArrayId phi = b.array("phi", {ext, ext, ext});
  ArrayId sigma = b.array("sigma", {ext, ext, ext});
  ArrayId src = b.array("src", {ext, ext, ext});

  // Sweep 1: wavefront recurrence (upwind in all three directions).
  b.loop3("k", 1, n, "j", 1, n, "i", 1, n, [&](IxVar k, IxVar j, IxVar i) {
    b.assign(b.ref(phi, {k, j, i}),
             {b.ref(phi, {k - 1, j, i}), b.ref(phi, {k, j - 1, i}),
              b.ref(phi, {k, j, i - 1}), b.ref(sigma, {k, j, i}),
              b.ref(src, {k, j, i})},
             "sweep octant 1");
  });
  // Accumulate the angular flux.
  b.loop3("k", 1, n, "j", 1, n, "i", 1, n, [&](IxVar k, IxVar j, IxVar i) {
    b.assign(b.ref(flux, {k, j, i}),
             {b.ref(flux, {k, j, i}), b.ref(phi, {k, j, i})}, "flux accum 1");
  });
  // Sweep 2 (second octant; same orientation in this model).
  b.loop3("k", 1, n, "j", 1, n, "i", 1, n, [&](IxVar k, IxVar j, IxVar i) {
    b.assign(b.ref(phi, {k, j, i}),
             {b.ref(phi, {k - 1, j, i}), b.ref(phi, {k, j - 1, i}),
              b.ref(phi, {k, j, i - 1}), b.ref(sigma, {k, j, i}),
              b.ref(src, {k, j, i})},
             "sweep octant 2");
  });
  b.loop3("k", 1, n, "j", 1, n, "i", 1, n, [&](IxVar k, IxVar j, IxVar i) {
    b.assign(b.ref(flux, {k, j, i}),
             {b.ref(flux, {k, j, i}), b.ref(phi, {k, j, i})}, "flux accum 2");
  });
  // Source update from the accumulated flux.
  b.loop3("k", 1, n, "j", 1, n, "i", 1, n, [&](IxVar k, IxVar j, IxVar i) {
    b.assign(b.ref(src, {k, j, i}),
             {b.ref(flux, {k, j, i}), b.ref(sigma, {k, j, i})},
             "source update");
  });

  return b.take();
}

}  // namespace gcr::apps
