#include "server/client.hpp"

#include <unistd.h>

#include <utility>

#include "store/codec.hpp"

namespace gcr::server {

struct Client::Impl {
  int fd = -1;
  std::string serverName;
  std::vector<std::uint8_t> lastPayload;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  /// One request/reply exchange.  Returns the reply payload when the reply
  /// kind matches `expect`; otherwise a populated error Result.
  template <typename T>
  Result<T> exchange(MsgKind request, std::span<const std::uint8_t> payload,
                     MsgKind expect,
                     std::optional<T> (*decode)(
                         std::span<const std::uint8_t>)) {
    Result<T> out;
    if (!sendFrame(fd, request, payload)) {
      out.message = "transport: send failed";
      return out;
    }
    const RecvResult r = recvFrame(fd);
    if (!r.ok) {
      out.message = r.eof ? "transport: connection closed"
                          : "transport: malformed reply frame";
      return out;
    }
    if (r.header.kind == MsgKind::ReplyError) {
      const std::optional<ErrorReply> err = decodeErrorReply(r.payload);
      if (err) {
        out.error = err->code;
        out.message = err->message;
      } else {
        out.message = "transport: undecodable error reply";
      }
      return out;
    }
    if (r.header.kind != expect) {
      out.message = "transport: unexpected reply kind";
      return out;
    }
    std::optional<T> value = decode(r.payload);
    if (!value) {
      out.message = "transport: undecodable reply payload";
      return out;
    }
    lastPayload = std::move(r.payload);
    out.value = std::move(value);
    return out;
  }
};

Client::Client() = default;
Client::~Client() = default;

std::unique_ptr<Client> Client::connect(const std::string& address,
                                        const std::string& tenant,
                                        std::string* error) {
  auto fail = [&](const std::string& why) -> std::unique_ptr<Client> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  auto impl = std::make_unique<Impl>();
  impl->fd = connectAddress(address);
  if (impl->fd < 0) return fail("cannot connect to " + address);

  const Result<HelloReply> hello = impl->exchange<HelloReply>(
      MsgKind::Hello, encodeHelloRequest(HelloRequest{tenant}),
      MsgKind::ReplyHello, decodeHelloReply);
  if (!hello.ok())
    return fail("handshake failed: " + hello.message);
  if (hello->protocolVersion != kProtocolVersion)
    return fail("protocol version mismatch");

  std::unique_ptr<Client> c(new Client());
  c->impl_ = std::move(impl);
  c->impl_->serverName = hello->serverName;
  return c;
}

Result<PipelineResult> Client::optimize(const OptimizeRequest& req) {
  return impl_->exchange<PipelineResult>(
      MsgKind::Optimize, encodeOptimizeRequest(req), MsgKind::ReplyOptimize,
      store::decodePipelineResult);
}

Result<Measurement> Client::measure(const MeasureRequest& req) {
  return impl_->exchange<Measurement>(MsgKind::Measure,
                                      encodeMeasureRequest(req),
                                      MsgKind::ReplyMeasure,
                                      store::decodeMeasurement);
}

Result<ReuseProfile> Client::profile(const ProfileRequest& req) {
  return impl_->exchange<ReuseProfile>(MsgKind::Profile,
                                       encodeProfileRequest(req),
                                       MsgKind::ReplyProfile,
                                       store::decodeReuseProfile);
}

Result<MulticoreProfile> Client::multicore(const MulticoreRequest& req) {
  return impl_->exchange<MulticoreProfile>(
      MsgKind::Multicore, encodeMulticoreRequest(req), MsgKind::ReplyMulticore,
      store::decodeMulticoreProfile);
}

Result<VerifyReply> Client::verify(const VerifyRequest& req) {
  return impl_->exchange<VerifyReply>(MsgKind::Verify,
                                      encodeVerifyRequest(req),
                                      MsgKind::ReplyVerify, decodeVerifyReply);
}

Result<StatsReply> Client::stats() {
  return impl_->exchange<StatsReply>(MsgKind::Stats, {}, MsgKind::ReplyStats,
                                     decodeStatsReply);
}

const std::vector<std::uint8_t>& Client::lastPayload() const {
  return impl_->lastPayload;
}

const std::string& Client::serverName() const { return impl_->serverName; }

}  // namespace gcr::server
