// Multicore locality engine (DESIGN.md §10): predict how a program's memory
// behaviour scales across cores under a static parallel schedule.
//
// Given a compiled access plan and a CacheTopology, analyzeMulticore():
//
//   1. slices the plan into per-core address streams (interp/schedule.hpp)
//      and simulates each core's PRIVATE L1+L2 exactly — one independent
//      SetAssocCache pair per core, so the per-core simulations run
//      concurrently on the deterministic thread pool with bit-identical
//      results for any thread count;
//
//   2. predicts the SHARED LLC by reuse-distance composition: each core's
//      slice stream is profiled at LLC-line granularity, and under the
//      symmetric round-robin interleaving of P statically-scheduled cores a
//      local reuse of distance d sees the other P-1 cores touch ~d distinct
//      lines each inside its window, so its interleaved distance is ~P·d
//      ("Modeling Shared Cache Performance of OpenMP Programs using Reuse
//      Distance", PAPERS.md).  Log2-binned, scaling by a power-of-two P is
//      an exact bin shift.  The scaled per-core histograms merge into the
//      predicted shared profile; the LLC miss fraction is its mass at
//      distance >= capacity-in-lines (perfect-LRU equivalence, §2.1 of the
//      paper).
//
// interleavedSharedProfile() is the exact referee: the true interleaved
// trace (round-robin with barriers, interp/schedule.hpp) through the exact
// reuse-distance tracker at the same granularity.  Model vs. referee error
// is gated in CI (gcr-verify --multicore, geomean avg CDF error <= 0.10).
//
// Known model error sources (measured by the referee): cross-core sharing
// at block boundaries (per-core cold counts double-count shared lines),
// distance-0 reuses that interleaving stretches, and cores with asymmetric
// slice lengths (the tail of a block schedule).  All shrink as per-core
// footprints grow.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/topology.hpp"
#include "interp/plan.hpp"
#include "locality/reuse_distance.hpp"
#include "support/thread_pool.hpp"

namespace gcr {

/// One core's exact private-level simulation results.
struct CoreCacheStats {
  std::uint64_t refs = 0;         ///< element references in this core's slice
  std::uint64_t l1Misses = 0;
  std::uint64_t l2Misses = 0;     ///< private-L2 demand misses (reach the LLC)
  std::uint64_t l2Writebacks = 0;
  std::uint64_t lineAccesses = 0; ///< LLC-line-granularity accesses
  std::uint64_t coldLines = 0;    ///< distinct lines this core touched
};

/// The multicore locality artifact: per-core private behaviour (exact) plus
/// the composed shared-LLC prediction.  Cached and persisted by the Engine
/// as ArtifactKind::MulticoreProfile.
struct MulticoreProfile {
  int cores = 1;
  ParallelSchedule schedule = ParallelSchedule::Block;
  std::uint64_t llcCapacityLines = 0;
  std::vector<CoreCacheStats> perCore;  ///< size == cores

  /// Predicted shared-LLC reuse-distance histogram (line granularity,
  /// concurrency-scaled and merged across cores).
  Log2Histogram shared;
  std::uint64_t sharedAccesses = 0;  ///< line accesses summed over cores
  std::uint64_t sharedColdLines = 0; ///< per-core colds summed (upper bound)
  /// Predicted LLC miss fraction among reuses (cold excluded): shared-CDF
  /// mass at distance >= llcCapacityLines.
  double llcMissFraction = 0.0;
  /// Predicted parallel execution time: max over cores of
  /// MulticoreCostModel::coreCycles with per-core LLC misses attributed as
  /// l2Misses * llcMissFraction.
  double cycles = 0.0;

  // Analysis-throughput observability (varies run to run; excluded from
  // determinism comparisons, reproduced verbatim on a cache hit).
  double wallSeconds = 0.0;

  std::uint64_t totalRefs() const {
    std::uint64_t sum = 0;
    for (const CoreCacheStats& c : perCore) sum += c.refs;
    return sum;
  }
};

/// Concurrency-scale one core's line-granularity reuse histogram: every
/// finite distance d becomes cores·d (an exact bin shift when cores is a
/// power of two); cold stays cold.  Exposed for tests.
Log2Histogram scaleReuseDistances(const Log2Histogram& h, int cores);

/// Run the full multicore analysis of a compiled plan under `topo`.  The
/// per-core private simulations are independent; they run on `pool` when
/// one is given (slot-per-core, bit-identical for any thread count), inline
/// otherwise.
MulticoreProfile analyzeMulticore(const AccessPlan& plan,
                                  const CacheTopology& topo,
                                  const MulticoreCostModel& cost = {},
                                  ThreadPool* pool = nullptr);

/// Exact referee: the measured shared-LLC reuse profile of the true
/// interleaved trace (materializes per-region streams — small-n only).
ReuseProfile interleavedSharedProfile(const AccessPlan& plan,
                                      const CacheTopology& topo);

}  // namespace gcr
