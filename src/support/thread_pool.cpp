#include "support/thread_pool.hpp"

#include "support/env.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace gcr {
namespace {

// Set while a thread is executing pool tasks; nested parallelFor calls from
// inside a task run inline instead of re-entering the pool.
thread_local bool insideTask = false;

void runRange(std::atomic<std::size_t>& next, std::size_t count,
              const std::function<void(std::size_t)>& fn,
              std::exception_ptr& error, std::mutex& errorMutex) {
  for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
       i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!error) error = std::current_exception();
    }
  }
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wakeWorkers;
  std::condition_variable batchDone;

  // Current batch; guarded by mutex except for the atomic claim counter.
  const std::function<void(std::size_t)>* job = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  int active = 0;            // workers currently inside the batch
  std::uint64_t generation = 0;
  bool stop = false;
  std::exception_ptr error;
  std::mutex errorMutex;

  // Asynchronous one-shot jobs (Engine::submit); guarded by mutex.
  std::deque<std::function<void()>> asyncJobs;

  std::vector<std::thread> workers;

  void workerLoop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      wakeWorkers.wait(lock, [&] {
        return stop || generation != seen || !asyncJobs.empty();
      });
      if (stop) return;
      if (generation != seen) {
        seen = generation;
        // The caller may have drained the whole batch (and cleared `job`)
        // before this worker woke; there is nothing left to claim.
        if (job != nullptr) {
          const std::function<void(std::size_t)>* fn = job;
          const std::size_t n = count;
          ++active;
          lock.unlock();
          insideTask = true;
          runRange(next, n, *fn, error, errorMutex);
          insideTask = false;
          lock.lock();
          if (--active == 0) batchDone.notify_all();
          continue;
        }
      }
      if (!asyncJobs.empty()) {
        std::function<void()> fn = std::move(asyncJobs.front());
        asyncJobs.pop_front();
        lock.unlock();
        insideTask = true;
        fn();  // contract: must not throw
        insideTask = false;
        lock.lock();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads > 0 ? threads : defaultThreadCount()) {
  if (threads_ <= 1) {
    threads_ = 1;
    return;  // inline-only: no workers, no synchronization anywhere
  }
  impl_ = std::make_unique<Impl>();
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int t = 0; t < threads_ - 1; ++t)
    impl_->workers.emplace_back([this] { impl_->workerLoop(); });
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  std::deque<std::function<void()>> leftover;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
    leftover.swap(impl_->asyncJobs);
  }
  impl_->wakeWorkers.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  // Complete jobs the workers never claimed: an enqueued job's promise must
  // always be fulfilled, even when the pool dies first.
  for (std::function<void()>& fn : leftover) fn();
}

int ThreadPool::defaultThreadCount() {
  if (const int v = env::threads(); v >= 1) return v;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ThreadPool::enqueue(std::function<void()> job) {
  if (!impl_ || insideTask) {
    // Inline paths: threads_ == 1 (the determinism baseline — submission
    // order is execution order, no machinery), or a pool task enqueueing
    // more work (running inline avoids a worker waiting on its own queue).
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stop) {
      // Destructor already started tearing the pool down (only reachable
      // from another thread racing ~ThreadPool); run inline.
    } else {
      impl_->asyncJobs.push_back(std::move(job));
      impl_->wakeWorkers.notify_one();
      return;
    }
  }
  job();
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (!impl_ || insideTask || count == 1) {
    // Sequential path: threads_ == 1, a nested call, or a trivial batch.
    // Matches the parallel path's contract: every index runs, then the
    // first exception (if any) is rethrown — so a throwing task cannot
    // change which tasks execute depending on the thread count.
    std::exception_ptr error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &fn;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->wakeWorkers.notify_all();

  // The caller is one of the threadCount() executors.
  insideTask = true;
  runRange(impl_->next, count, fn, impl_->error, impl_->errorMutex);
  insideTask = false;

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->batchDone.wait(lock, [&] { return impl_->active == 0; });
  impl_->job = nullptr;
  if (impl_->error) std::rethrow_exception(impl_->error);
}

}  // namespace gcr
