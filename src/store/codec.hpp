// Binary codecs for the artifacts the Engine persists: Measurements,
// ReuseProfiles and full PipelineResults (including the transformed Program
// tree and the Regrouping partitions, so a deserialized result can
// materialize layouts and assemble versions exactly like a fresh run).
//
// Contracts, enforced by tests/store/store_codec_test.cpp:
//   * round trip — decode(encode(x)) reproduces every field of x, doubles
//     bit-for-bit (NaN included);
//   * canonical — encode(decode(encode(x))) == encode(x) byte-for-byte,
//     which is what makes the store's content checksums meaningful;
//   * defensive — decode() of any byte soup returns nullopt, never throws,
//     never reads out of bounds (ByteReader bounds-checks every access);
//     trailing bytes after a well-formed value are rejected too.
//
// Compiled access plans are deliberately NOT serialized: a plan borrows
// pointers into its Program and layout, so persisting it would be a
// use-after-free by construction.  Plans re-compile per process (cheap next
// to simulation) and record their signatures (Engine::compiledPlanSignatures)
// so the native-codegen work can attach compiled artifacts later.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "analysis/symbolic_reuse.hpp"
#include "driver/measure.hpp"
#include "driver/pipeline.hpp"
#include "locality/multicore.hpp"
#include "locality/reuse_distance.hpp"

namespace gcr::store {

std::vector<std::uint8_t> encodeMeasurement(const Measurement& m);
std::optional<Measurement> decodeMeasurement(
    std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encodeReuseProfile(const ReuseProfile& p);
std::optional<ReuseProfile> decodeReuseProfile(
    std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encodePipelineResult(const PipelineResult& r);
std::optional<PipelineResult> decodePipelineResult(
    std::span<const std::uint8_t> bytes);

/// A natively compiled access plan (ArtifactKind::CompiledPlan): the
/// shared-object image plus everything needed to decide whether this host
/// can reuse it.  The fingerprint and ABI version are also folded into the
/// entry's signature, so a mismatch here indicates corruption or a hash
/// collision rather than an expected cross-toolchain lookup — loaders
/// verify anyway and treat a mismatch as a miss.
struct CompiledPlanArtifact {
  std::int32_t abiVersion = 0;      ///< codegen/native_abi.hpp version
  std::string compilerFingerprint;  ///< native_cc.hpp fingerprint
  std::uint64_t paramCount = 0;     ///< expected params-table size
  std::vector<std::uint8_t> soBytes;
};

std::vector<std::uint8_t> encodeCompiledPlan(const CompiledPlanArtifact& a);
std::optional<CompiledPlanArtifact> decodeCompiledPlan(
    std::span<const std::uint8_t> bytes);

/// Symbolic reuse profiles (ArtifactKind::SymbolicProfile): per-site
/// formulas with their SymExpr trees serialized via SymExpr::encode, which
/// shares this codec's contracts (canonical bytes, defensive decode).
std::vector<std::uint8_t> encodeSymbolicProfile(const SymbolicReuseProfile& p);
std::optional<SymbolicReuseProfile> decodeSymbolicProfile(
    std::span<const std::uint8_t> bytes);

/// Multicore locality profiles (ArtifactKind::MulticoreProfile): per-core
/// private-level counts plus the composed shared-LLC histogram.
std::vector<std::uint8_t> encodeMulticoreProfile(const MulticoreProfile& p);
std::optional<MulticoreProfile> decodeMulticoreProfile(
    std::span<const std::uint8_t> bytes);

}  // namespace gcr::store
