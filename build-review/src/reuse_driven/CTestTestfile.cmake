# CMake generated Testfile for 
# Source directory: /root/repo/src/reuse_driven
# Build directory: /root/repo/build-review/src/reuse_driven
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
