#include "driver/measure.hpp"

#include "interp/interp.hpp"

namespace gcr {

Measurement measure(const ProgramVersion& version, std::int64_t n,
                    const MachineConfig& machine, std::uint64_t timeSteps,
                    const CostModel& cost) {
  DataLayout layout = version.layoutAt(n);
  MemoryHierarchy hierarchy(machine);
  execute(version.program, layout, {.n = n, .timeSteps = timeSteps},
          &hierarchy);
  Measurement m;
  m.counts = hierarchy.counts();
  m.cycles = cost.cycles(m.counts);
  m.memoryTrafficBytes = hierarchy.memoryTrafficBytes();
  m.effectiveBandwidth = hierarchy.effectiveBandwidthRatio();
  return m;
}

ReuseProfile reuseProfileOf(const ProgramVersion& version, std::int64_t n,
                            std::uint64_t timeSteps) {
  DataLayout layout = version.layoutAt(n);
  ReuseDistanceSink sink(8);
  execute(version.program, layout, {.n = n, .timeSteps = timeSteps}, &sink);
  return sink.takeProfile();
}

void collectPairwise(const ProgramVersion& version, std::int64_t n,
                     PairwiseReuseCollector& collector,
                     std::uint64_t timeSteps) {
  DataLayout layout = version.layoutAt(n);
  execute(version.program, layout, {.n = n, .timeSteps = timeSteps},
          &collector);
}

}  // namespace gcr
