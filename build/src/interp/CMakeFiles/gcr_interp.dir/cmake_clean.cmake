file(REMOVE_RECURSE
  "CMakeFiles/gcr_interp.dir/interp.cpp.o"
  "CMakeFiles/gcr_interp.dir/interp.cpp.o.d"
  "CMakeFiles/gcr_interp.dir/layout.cpp.o"
  "CMakeFiles/gcr_interp.dir/layout.cpp.o.d"
  "libgcr_interp.a"
  "libgcr_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
