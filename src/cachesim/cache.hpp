// Set-associative LRU cache model.
//
// Geometry matches the paper's machines (SGI Octane R10K and Origin2000
// R12K): L1 32KB / 32B lines, L2 1MB or 4MB / 128B lines, both 2-way.  The
// same class models the TLB (numSets = 1, ways = entry count, lineSize =
// page size) and the "perfect cache" of Section 2.1 (fully associative).
// Policy: write-back, write-allocate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace gcr {

struct CacheConfig {
  std::int64_t sizeBytes = 0;
  std::int64_t lineSize = 0;
  int ways = 0;
  std::string name;

  std::int64_t numSets() const { return sizeBytes / (lineSize * ways); }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetchFills = 0;  ///< lines brought in by prefetch()
  std::uint64_t prefetchHits = 0;   ///< demand hits on prefetched lines

  std::uint64_t hits() const { return accesses - misses; }
  double missRate() const {
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Simulate one reference; returns true on hit.
  bool access(std::int64_t addr, bool isWrite);

  /// Bring the line holding `addr` into the cache without a demand access —
  /// the model for (software or next-line hardware) prefetching.  A later
  /// demand hit on the line is counted as a prefetch hit.  Prefetch fills
  /// consume memory bandwidth like any fill; that tradeoff (latency hidden,
  /// bandwidth spent) is the paper's Section 1 argument for why
  /// latency-oriented techniques cannot replace traffic reduction.
  void prefetch(std::int64_t addr);

  /// True when the most recent access() hit a line brought in by
  /// prefetch() — used for tagged prefetching (keep the stream running).
  bool lastHitWasPrefetched() const { return lastHitWasPrefetched_; }

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void resetStats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    std::int64_t tag = -1;
    std::uint64_t lastUse = 0;
    bool dirty = false;
    bool prefetched = false;
  };

  Line* findVictim(std::int64_t set);

  CacheConfig cfg_;
  std::int64_t setMask_;
  int lineShift_;
  std::vector<Line> lines_;  // numSets * ways, set-major
  CacheStats stats_;
  std::uint64_t clock_ = 0;
  bool lastHitWasPrefetched_ = false;
};

/// Fully-associative-LRU TLB is a 1-set cache over page-granular addresses.
SetAssocCache makeTlb(int entries, std::int64_t pageSize,
                      const std::string& name = "TLB");

}  // namespace gcr
