// Differential tests: the compiled-plan engine must be indistinguishable
// from the tree-walking interpreter — byte-identical memory images,
// instruction counts, and instruction traces — across every registry app,
// contiguous and regrouped layouts, reversed loops, guards and statement
// embedding, multiple time steps, and a fuzz sweep of random programs.
#include "interp/plan.hpp"

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "common/random_program.hpp"
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "ir/builder.hpp"

namespace gcr {
namespace {

// Returns the index of the first differing trace instance, or -1.
std::ptrdiff_t firstTraceMismatch(const InstrTrace& a, const InstrTrace& b) {
  if (a.size() != b.size()) return 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.stmtId(i) != b.stmtId(i) || a.writeAddr(i) != b.writeAddr(i))
      return static_cast<std::ptrdiff_t>(i);
    const auto ra = a.reads(i);
    const auto rb = b.reads(i);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
      return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

void expectEnginesIdentical(const Program& p, const DataLayout& layout,
                            ExecOptions opts) {
  ASSERT_TRUE(compilePlan(p, layout, opts).ok())
      << "program must qualify for the plan engine";
  opts.engine = ExecEngine::TreeWalk;
  InstrTrace walkTrace;
  const ExecResult walk = execute(p, layout, opts, &walkTrace);
  opts.engine = ExecEngine::Plan;
  InstrTrace planTrace;
  const ExecResult plan = execute(p, layout, opts, &planTrace);

  EXPECT_EQ(walk.instrCount, plan.instrCount);
  EXPECT_EQ(walk.memory, plan.memory);
  ASSERT_EQ(walkTrace.size(), planTrace.size());
  EXPECT_EQ(firstTraceMismatch(walkTrace, planTrace), -1);
}

void expectEnginesIdentical(const ProgramVersion& v, std::int64_t n,
                            std::uint64_t timeSteps = 1) {
  DataLayout layout = v.layoutAt(n);
  expectEnginesIdentical(v.program, layout,
                         {.n = n, .timeSteps = timeSteps});
}

TEST(PlanDifferential, RegistryAppsContiguous) {
  for (const auto& app : apps::evaluationApps()) {
    SCOPED_TRACE(app.name);
    expectEnginesIdentical(makeVersion(apps::buildApp(app.name), Strategy::NoOpt), 24);
  }
  expectEnginesIdentical(makeVersion(apps::buildApp("Sweep3D"), Strategy::NoOpt), 16);
}

TEST(PlanDifferential, RegistryAppsTransformedAndRegrouped) {
  // Fused programs exercise guards/alignment windows; regrouping exercises
  // non-contiguous (interleaved) layouts; SGI-like exercises padded layouts
  // plus local fusion.
  for (const auto& app : apps::evaluationApps()) {
    SCOPED_TRACE(app.name);
    Program p = apps::buildApp(app.name);
    expectEnginesIdentical(makeVersion(p, Strategy::Fused), 24);
    expectEnginesIdentical(makeVersion(p, Strategy::FusedRegrouped), 24);
    expectEnginesIdentical(makeVersion(p, Strategy::SgiLike), 24);
  }
}

TEST(PlanDifferential, TimeStepsRepeatIdentically) {
  Program p = apps::buildApp("ADI");
  expectEnginesIdentical(makeVersion(p, Strategy::NoOpt), 20, /*timeSteps=*/3);
  expectEnginesIdentical(makeVersion(p, Strategy::FusedRegrouped), 20, /*timeSteps=*/3);
}

TEST(PlanDifferential, ReversedLoops) {
  ProgramBuilder b("rev");
  ArrayId a = b.array("A", {AffineN::N() + 2});
  b.loopDown("i", 1, AffineN::N(),
             [&](IxVar i) { b.assign(b.ref(a, {i}), {b.ref(a, {i + 1})}); });
  b.loop("j", 1, AffineN::N(),
         [&](IxVar j) { b.assign(b.ref(a, {j}), {b.ref(a, {j - 1})}); });
  Program p = b.take();
  expectEnginesIdentical(p, contiguousLayout(p, 32), {.n = 32});
}

TEST(PlanDifferential, GuardsAndStatementEmbedding) {
  // Guarded members at the innermost depth (alignment windows + a width-one
  // embedding guard), on forward and reversed loops.
  for (bool reversed : {false, true}) {
    SCOPED_TRACE(reversed ? "reversed" : "forward");
    ProgramBuilder b("guards");
    ArrayId a = b.array("A", {AffineN::N() + 4});
    ArrayId c = b.array("B", {AffineN::N() + 4});
    auto body = [&](IxVar i) {
      b.assign(b.ref(a, {i}), {b.ref(c, {i})});
      b.assign(b.ref(c, {i + 1}), {b.ref(a, {i})});
      b.assign(b.ref(a, {i + 2}), {b.ref(c, {i})});
    };
    if (reversed)
      b.loopDown("i", 0, AffineN::N(), body);
    else
      b.loop("i", 0, AffineN::N(), body);
    Program p = b.take();
    Loop& l = p.top[0].node->loop();
    l.body[0].guards = {GuardSpec{0, AffineN(2), AffineN::N() - AffineN(1)}};
    l.body[1].guards = {GuardSpec{0, AffineN(5), AffineN(5)}};  // embedding
    // Third member unguarded: the active set changes across sub-ranges.
    expectEnginesIdentical(p, contiguousLayout(p, 24), {.n = 24});
  }
}

TEST(PlanDifferential, OuterDepthGuardOnInnerStatement) {
  // A statement two levels deep, guarded on the *outer* loop variable — the
  // residual runtime-guard path (checked once per inner-loop entry).
  ProgramBuilder b("outer-guard");
  ArrayId a = b.array("T", {AffineN::N() + 2, AffineN::N() + 2});
  b.loop2("i", 0, AffineN::N(), "j", 0, AffineN::N(),
          [&](IxVar i, IxVar j) {
            b.assign(b.ref(a, {i, j}), {});
            b.assign(b.ref(a, {i + 1, j + 1}), {b.ref(a, {i, j})});
          });
  Program p = b.take();
  Loop& inner = p.top[0].node->loop().body[0].node->loop();
  inner.body[1].guards = {GuardSpec{0, AffineN(3), AffineN(7)},
                          GuardSpec{1, AffineN(2), AffineN::N() - AffineN(2)}};
  expectEnginesIdentical(p, contiguousLayout(p, 16), {.n = 16});
}

TEST(PlanDifferential, EmptyGuardRangeDropsChild) {
  Program p = [&] {
    ProgramBuilder b("empty-guard");
    ArrayId a = b.array("A", {AffineN::N()});
    b.loop("i", 0, AffineN::N() - AffineN(1), [&](IxVar i) {
      b.assign(b.ref(a, {i}), {});
      b.assign(b.ref(a, {i}), {b.ref(a, {i})});
    });
    return b.take();
  }();
  // Second member guarded to an empty range: never executes on either engine.
  p.top[0].node->loop().body[1].guards = {GuardSpec{0, AffineN(9), AffineN(3)}};
  expectEnginesIdentical(p, contiguousLayout(p, 16), {.n = 16});
}

TEST(PlanDifferential, CustomInitValue) {
  Program p = apps::buildApp("Swim");
  DataLayout layout = contiguousLayout(p, 20);
  ExecOptions opts{.n = 20};
  opts.initValue = [](ArrayId a, std::span<const std::int64_t> idx) {
    std::uint64_t v = static_cast<std::uint64_t>(a) * 1000003u;
    for (std::int64_t i : idx) v = v * 31 + static_cast<std::uint64_t>(i);
    return v;
  };
  expectEnginesIdentical(p, layout, opts);
}

TEST(PlanDifferential, OutOfBoundsFallsBackAndThrows) {
  // Not plan-qualifying (provable subscript overflow): execute() must fall
  // back to the tree walker and surface its exact bounds error.
  ProgramBuilder b("oob");
  ArrayId a = b.array("A", {AffineN::N()});
  b.loop("i", 0, AffineN::N(),
         [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  Program p = b.take();
  DataLayout l = contiguousLayout(p, 8);
  EXPECT_FALSE(compilePlan(p, l, {.n = 8}).ok());
  EXPECT_THROW(execute(p, l, {.n = 8}), Error);
}

TEST(PlanCompile, RegistryAppsQualify) {
  // The plan engine must be the default for every published measurement.
  for (const auto& app : apps::evaluationApps()) {
    Program p = apps::buildApp(app.name);
    for (const ProgramVersion& v :
         {makeVersion(p, Strategy::NoOpt), makeVersion(p, Strategy::Fused), makeVersion(p, Strategy::FusedRegrouped), makeVersion(p, Strategy::SgiLike)}) {
      SCOPED_TRACE(app.name + "/" + v.name);
      DataLayout layout = v.layoutAt(24);
      const PlanCompileResult r =
          compilePlan(v.program, layout, {.n = 24});
      EXPECT_TRUE(r.ok()) << r.reason;
    }
  }
}

TEST(PlanCompile, ExactDynamicCountsMatchExecution) {
  Program p = apps::buildApp("Tomcatv");
  DataLayout layout = contiguousLayout(p, 24);
  const PlanCompileResult r = compilePlan(p, layout, {.n = 24});
  ASSERT_TRUE(r.ok()) << r.reason;
  CountingSink sink;
  const ExecResult res = execute(p, layout, {.n = 24}, &sink);
  EXPECT_EQ(r.plan->instrsPerStep, res.instrCount);
  EXPECT_EQ(r.plan->readsPerStep + r.plan->instrsPerStep, sink.refs());
}

class PlanFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanFuzz, RandomProgramsIdentical) {
  testing::RandomProgramOptions opts;
  opts.allowTwoDim = true;
  opts.allowReversed = true;
  Program p = testing::randomProgram(GetParam(), opts);
  expectEnginesIdentical(p, contiguousLayout(p, 21), {.n = 21});
  expectEnginesIdentical(p, paddedLayout(p, 21, 96), {.n = 21});
  // Push each random program through the optimizer too: fused output is the
  // guard-heavy IR the plan engine must get right.
  expectEnginesIdentical(makeVersion(p, Strategy::FusedRegrouped), 21);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace gcr
