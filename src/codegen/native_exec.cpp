#include "codegen/native_exec.hpp"

#include <algorithm>
#include <cstdio>

#include "store/codec.hpp"

namespace gcr {
namespace {

/// Matches the plan interpreter's chunk granularity (one onBlock per ~4K
/// instances); block boundaries are semantically invisible to sinks.
constexpr std::uint64_t kNativeBlockCapacity = 4096;

static_assert(sizeof(int) == 4, "InstrBlock stmtIds assume 32-bit int");

void deliverBlock(void* ctx, const std::int32_t* stmt,
                  const std::uint64_t* off, const std::int64_t* pool,
                  const std::int64_t* wr, std::uint64_t count) {
  auto* sink = static_cast<InstrSink*>(ctx);
  InstrBlock b;
  b.stmtIds = {reinterpret_cast<const int*>(stmt),
               static_cast<std::size_t>(count)};
  b.readOffsets = {off, static_cast<std::size_t>(count) + 1};
  b.readPool = {pool, static_cast<std::size_t>(off[count])};
  b.writes = {wr, static_cast<std::size_t>(count)};
  sink->onBlock(b);
}

}  // namespace

NativeRuntime::NativeRuntime(Options opts)
    : opts_(opts),
      compiler_(discoverNativeCompiler()),
      modules_(opts.moduleCacheCapacity) {}

Signature NativeRuntime::keyFor(const std::string& code) const {
  SigHasher h;
  h.str(code).str(compiler_.fingerprint).i64(kNativeAbiVersion);
  return h.take();
}

Signature NativeRuntime::artifactKey(const AccessPlan& plan) const {
  return keyFor(emitNativePlan(plan).code);
}

void NativeRuntime::noteFallback(const std::string& why) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.fallbacks;
  diagnostic_ = why;
  if (!warned_) {
    warned_ = true;
    std::fprintf(stderr,
                 "gcr: native engine unavailable (%s); falling back to the "
                 "plan interpreter\n",
                 why.c_str());
  }
}

std::shared_ptr<NativeModule> NativeRuntime::moduleFor(const NativeSource& src,
                                                       std::string* why) {
  const Signature key = keyFor(src.code);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto* m = modules_.get(key)) {
      ++counters_.moduleCacheHits;
      return *m;
    }
  }
  // Disk tier: a warm store crosses process boundaries without a compiler.
  if (opts_.store != nullptr) {
    if (auto entry = opts_.store->get(store::ArtifactKind::CompiledPlan, key)) {
      if (auto art = store::decodeCompiledPlan(entry->payload());
          art && art->abiVersion == kNativeAbiVersion &&
          art->compilerFingerprint == compiler_.fingerprint &&
          art->paramCount == src.paramCount) {
        const std::string bytes(art->soBytes.begin(), art->soBytes.end());
        std::string loadErr;
        if (auto m = NativeModule::load(bytes, &loadErr)) {
          if (m->paramCount() ==
              static_cast<std::int64_t>(src.paramCount)) {
            std::shared_ptr<NativeModule> sm(std::move(m));
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.storeHits;
            modules_.put(key, sm);
            return sm;
          }
        }
      }
      // Decode/validation/load failure degrades to a compile; the store
      // already self-heals checksum-level corruption on its side.
    }
  }
  if (!opts_.allowCompile) {
    *why = "native compilation disabled and no stored artifact for key " +
           key.str();
    return nullptr;
  }
  if (!compiler_.found) {
    *why = compiler_.diagnostic;
    return nullptr;
  }
  NativeCompileResult cr = compileNativeSource(compiler_, src.code);
  if (!cr.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.compileFailures;
    *why = "native compile failed: " + cr.error;
    return nullptr;
  }
  std::string loadErr;
  auto m = NativeModule::load(cr.soBytes, &loadErr);
  if (m == nullptr) {
    *why = "native module load failed: " + loadErr;
    return nullptr;
  }
  if (m->paramCount() != static_cast<std::int64_t>(src.paramCount)) {
    *why = "native module parameter-count mismatch";
    return nullptr;
  }
  bool published = false;
  if (opts_.store != nullptr) {
    store::CompiledPlanArtifact art;
    art.abiVersion = kNativeAbiVersion;
    art.compilerFingerprint = compiler_.fingerprint;
    art.paramCount = src.paramCount;
    art.soBytes.assign(cr.soBytes.begin(), cr.soBytes.end());
    published = opts_.store->put(store::ArtifactKind::CompiledPlan, key,
                                 store::encodeCompiledPlan(art));
  }
  std::shared_ptr<NativeModule> sm(std::move(m));
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.compiles;
  if (published) ++counters_.storePuts;
  modules_.put(key, sm);
  return sm;
}

ExecResult NativeRuntime::execute(const AccessPlan& plan,
                                  const ExecOptions& opts, InstrSink* sink) {
  const NativeSource src = emitNativePlan(plan);
  std::string why;
  std::shared_ptr<NativeModule> m = moduleFor(src, &why);
  if (m == nullptr) {
    noteFallback(why);
    return executePlan(plan, opts, sink);
  }
  const std::vector<std::int64_t> params = nativeParams(plan);
  if (params.size() != src.paramCount) {
    noteFallback("native parameter table size mismatch");
    return executePlan(plan, opts, sink);
  }

  // Identical starting state to both interpreter engines.
  ExecResult res;
  res.memory.assign(
      static_cast<std::size_t>(plan.layout->totalBytes() / 8), 0);
  initializeMemory(*plan.program, *plan.layout, opts, res.memory);

  const std::int64_t steps = static_cast<std::int64_t>(plan.timeSteps);
  if (sink == nullptr) {
    res.instrCount =
        m->run()(res.memory.data(), params.data(), plan.n, steps);
  } else {
    const std::size_t cap = static_cast<std::size_t>(kNativeBlockCapacity);
    std::vector<std::int32_t> bstmt(cap);
    std::vector<std::uint64_t> boff(cap + 1);
    std::vector<std::int64_t> bwrite(cap);
    std::vector<std::int64_t> bpool(
        cap * std::max<std::size_t>(plan.maxReadsPerStmt, 1));
    res.instrCount = m->trace()(
        res.memory.data(), params.data(), plan.n, steps, bstmt.data(),
        boff.data(), bpool.data(), bwrite.data(), kNativeBlockCapacity,
        &deliverBlock, sink);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.nativeRuns;
  }
  return res;
}

std::string NativeRuntime::diagnostic() const {
  std::lock_guard<std::mutex> lock(mu_);
  return diagnostic_;
}

NativeCounters NativeRuntime::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace gcr
