#include "codegen/emit_c.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace gcr {
namespace {

Program sample() {
  ProgramBuilder b("sample");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(1)});
  ArrayId c = b.array("B", {AffineN::N() + AffineN(1)});
  b.loop("i", 1, AffineN::N(), [&](IxVar i) {
    b.assign(b.ref(a, {i}), {b.ref(a, {i - 1})}, "recurrence");
  });
  b.assign(b.ref(c, {cst(0)}), {b.ref(a, {cst(AffineN::N())})});
  return b.take();
}

TEST(EmitC, ContainsExpectedStructure) {
  Program p = sample();
  DataLayout l = contiguousLayout(p, 16);
  const std::string code = emitC(p, l, {.n = 16});
  EXPECT_NE(code.find("static uint64_t gcr_mem["), std::string::npos);
  EXPECT_NE(code.find("void gcr_init(void)"), std::string::npos);
  EXPECT_NE(code.find("void gcr_run(int64_t steps)"), std::string::npos);
  EXPECT_NE(code.find("uint64_t gcr_checksum(void)"), std::string::npos);
  // Loop bounds baked in at N = 16.
  EXPECT_NE(code.find("for (int64_t i0 = 1; i0 <= 16;"), std::string::npos);
  // The statement label survives as a comment.
  EXPECT_NE(code.find("/* recurrence */"), std::string::npos);
  // No main unless requested.
  EXPECT_EQ(code.find("int main"), std::string::npos);
}

TEST(EmitC, MainEmittedOnRequest) {
  Program p = sample();
  DataLayout l = contiguousLayout(p, 8);
  const std::string code =
      emitC(p, l, {.n = 8, .emitMain = true, .timeSteps = 3});
  EXPECT_NE(code.find("int main(void)"), std::string::npos);
  EXPECT_NE(code.find("gcr_run(3)"), std::string::npos);
}

TEST(EmitC, GuardsBecomeIfs) {
  Program p = sample();
  p.top[0].node->loop().body[0].guards = {GuardSpec{0, AffineN(3), AffineN(5)}};
  DataLayout l = contiguousLayout(p, 16);
  const std::string code = emitC(p, l, {.n = 16});
  EXPECT_NE(code.find("if (i0 >= 3 && i0 <= 5)"), std::string::npos);
}

TEST(EmitC, LayoutBakedIntoSubscripts) {
  // Under a padded layout, B's base shifts; the emitted index must too.
  Program p = sample();
  DataLayout plain = contiguousLayout(p, 8);
  DataLayout padded = paddedLayout(p, 8, 800);
  const std::string c1 = emitC(p, plain, {.n = 8});
  const std::string c2 = emitC(p, padded, {.n = 8});
  EXPECT_NE(c1, c2);
}

TEST(EmitC, ChecksumMatchesInterpreterDefinition) {
  // contentChecksum must be layout-independent (logical contents only).
  Program p = sample();
  const std::int64_t n = 12;
  DataLayout l1 = contiguousLayout(p, n);
  DataLayout l2 = paddedLayout(p, n, 256);
  ExecResult r1 = execute(p, l1, {.n = n});
  ExecResult r2 = execute(p, l2, {.n = n});
  EXPECT_EQ(contentChecksum(p, r1, l1, n), contentChecksum(p, r2, l2, n));
}

TEST(EmitC, RejectsNonWordElements) {
  Program p = sample();
  p.arrays[0].elemSize = 4;
  DataLayout l = contiguousLayout(p, 8);
  EXPECT_THROW(emitC(p, l, {.n = 8}), Error);
}

}  // namespace
}  // namespace gcr
