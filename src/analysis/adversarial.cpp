#include "analysis/adversarial.hpp"

#include "fusion/legal.hpp"
#include "ir/builder.hpp"
#include "ir/validate.hpp"
#include "support/assert.hpp"
#include "xform/interchange.hpp"

namespace gcr {

namespace {

// ---- checker wrappers (one per cited pass) --------------------------------

std::vector<Diagnostic> runInterchange(const Program& p, std::int64_t minN) {
  GCR_CHECK(!p.top.empty() && p.top.front().node->isLoop(),
            "adversarial interchange case must start with a loop");
  return checkInterchangeLegal(p, p.top.front().node->loop(), minN, p.name);
}

std::vector<Diagnostic> runFusion(const Program& p, std::int64_t minN) {
  GCR_CHECK(p.top.size() >= 2, "adversarial fusion case needs two units");
  return checkFusionLegal(p, p.top[0], p.top[1], 0, minN, 3, p.name);
}

std::vector<Diagnostic> runValidate(const Program& p, std::int64_t minN) {
  return validateStrict(p, minN, p.name);
}

// ---- the illegal programs -------------------------------------------------

/// A(i,j) = A(i-1,j+1): distance (1,-1), direction (<,>).  Interchanging
/// would run the sink iteration before its source wrote the value.
Program interchangeNegativeDistance() {
  ProgramBuilder b("adv-interchange");
  const ArrayId A = b.array("A", {AffineN::N(), AffineN::N()});
  b.loop2("i", 1, AffineN::N() - 2, "j", 1, AffineN::N() - 2,
          [&](IxVar i, IxVar j) {
            b.assign(b.ref(A, {i, j}), {b.ref(A, {i - 1, j + 1})});
          });
  return b.take();
}

/// Second loop reads the *last* element the first loop writes: every fused
/// iteration would need the whole first loop finished, an alignment factor
/// of N-1 (grows with the problem size, not a constant boundary strip).
Program fusionUnboundedAlignment() {
  ProgramBuilder b("adv-fusion-unbounded");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  const ArrayId C = b.array("C", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(A, {i}), {b.ref(B, {i})}); });
  b.loop("i", 0, AffineN::N() - 1, [&](IxVar i) {
    b.assign(b.ref(C, {i}), {b.ref(A, {cst(AffineN::N() - 1)})});
  });
  return b.take();
}

/// A forward reader and a reversed shifter of the same array.  Run in
/// program order the reversed loop propagates A(N-1) down the whole array;
/// fused into one forward loop it would shift each element by one instead.
Program fusionMixedDirection() {
  ProgramBuilder b("adv-fusion-mixed");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 2,
         [&](IxVar i) { b.assign(b.ref(B, {i}), {b.ref(A, {i})}); });
  b.loopDown("i", 0, AffineN::N() - 2,
             [&](IxVar i) { b.assign(b.ref(A, {i}), {b.ref(A, {i + 1})}); });
  return b.take();
}

/// D(i,i): two subscript dimensions driven by the same loop level.  The
/// dependence analyzer treats the dimensions as independent and would
/// silently return Unknown for pairs involving this reference.
Program validateDiagonal() {
  ProgramBuilder b("adv-diagonal");
  const ArrayId D = b.array("D", {AffineN::N(), AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(D, {i, i}), {b.ref(B, {i})}); });
  return b.take();
}

/// A(i+N) = B(i): the subscript offset scales with the problem size, outside
/// the Figure-5 parametric form every alignment computation assumes.
Program validateScaledOffset() {
  ProgramBuilder b("adv-scaled-offset");
  const ArrayId A = b.array("A", {2 * AffineN::N() + 1});
  const ArrayId B = b.array("B", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1, [&](IxVar i) {
    b.assign(b.ref(A, {Subscript::var(i.depth, AffineN::N())}),
             {b.ref(B, {i})});
  });
  return b.take();
}

}  // namespace

std::vector<AdversarialCase> adversarialCases() {
  std::vector<AdversarialCase> cases;
  cases.push_back({"interchange-negative-distance", "interchange",
                   "direction-vector", interchangeNegativeDistance(),
                   &runInterchange});
  cases.push_back({"fusion-unbounded-alignment", "fusion",
                   "unbounded-alignment", fusionUnboundedAlignment(),
                   &runFusion});
  cases.push_back({"fusion-mixed-direction", "fusion", "mixed-direction",
                   fusionMixedDirection(), &runFusion});
  cases.push_back({"validate-diagonal-subscript", "validate",
                   "diagonal-subscript", validateDiagonal(), &runValidate});
  cases.push_back({"validate-scaled-offset", "validate", "scaled-offset",
                   validateScaledOffset(), &runValidate});
  return cases;
}

bool cites(const std::vector<Diagnostic>& diags, const std::string& pass,
           const std::string& rule) {
  for (const Diagnostic& d : diags)
    if (d.pass == pass && d.rule == rule && d.severity >= Severity::Warning)
      return true;
  return false;
}

}  // namespace gcr
