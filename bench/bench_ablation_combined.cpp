// Ablation: the paper's claim that the two transformations only work
// *together* — "Fusion may degrade performance without grouping and
// grouping may see little opportunity without fusion."
//
// Four versions per app: original, fusion-only, grouping-only, both.
#include "apps/registry.hpp"
#include "bench_util.hpp"

int main() {
  using namespace gcr;
  bench::printHeader(
      "Ablation: fusion and regrouping separately vs combined",
      "Section 4.3 summary: neither transformation is beneficial without "
      "the other");

  struct AppRun {
    const char* name;
    std::int64_t n;
    std::uint64_t steps;
  };
  const AppRun runs[] = {{"Swim", 321, 2}, {"ADI", 1000, 1}, {"SP", 26, 1}};
  const MachineConfig machine = MachineConfig::origin2000();

  Engine& engine = bench::sessionEngine();
  for (const AppRun& run : runs) {
    Program p = apps::buildApp(run.name);
    auto row = [&](const char* label, Strategy s) {
      return bench::VersionRow{
          label,
          engine.measure(engine.version(p, s), run.n, machine, run.steps)};
    };
    std::vector<bench::VersionRow> rows;
    rows.push_back(row("original", Strategy::NoOpt));
    rows.push_back(row("fusion only", Strategy::Fused));
    rows.push_back(row("grouping only", Strategy::RegroupedOnly));
    rows.push_back(row("fusion + grouping", Strategy::FusedRegrouped));
    bench::printFig10Panel(run.name, run.n, machine, rows);
  }
  bench::printEngineStats();
  return 0;
}
