// Differential fuzz: on random valid programs, the Engine's cached
// pipeline/measure path must agree exactly with the direct (engine-less)
// makeVersion() + measure() primitives, and a warm replay must be
// byte-identical to the cold run.
#include <gtest/gtest.h>

#include <cstring>

#include "../common/random_program.hpp"
#include "engine/engine.hpp"
#include "ir/print.hpp"

namespace gcr {
namespace {

bool sameSimulatedFields(const Measurement& a, const Measurement& b) {
  return std::memcmp(&a.counts, &b.counts, sizeof a.counts) == 0 &&
         a.cycles == b.cycles &&
         a.memoryTrafficBytes == b.memoryTrafficBytes &&
         a.effectiveBandwidth == b.effectiveBandwidth;
}

TEST(EngineFuzz, EngineMatchesDirectPathOnRandomPrograms) {
  const MachineConfig machine = MachineConfig::origin2000();
  testing::RandomProgramOptions opts;
  opts.allowTwoDim = true;
  opts.allowReversed = true;

  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Program p = testing::randomProgram(seed, opts);
    Engine engine;

    for (Strategy s : {Strategy::NoOpt, Strategy::Fused,
                       Strategy::FusedRegrouped}) {
      ProgramVersion direct = makeVersion(p, s);
      ProgramVersion cached = engine.version(p, s);
      ASSERT_EQ(toString(cached.program), toString(direct.program))
          << "seed " << seed << " strategy " << static_cast<int>(s);

      const Measurement md = measure(direct, 16, machine);
      const Measurement cold = engine.measure(cached, 16, machine);
      EXPECT_TRUE(sameSimulatedFields(md, cold))
          << "seed " << seed << " strategy " << static_cast<int>(s);

      const Measurement warm = engine.measure(cached, 16, machine);
      EXPECT_TRUE(sameSimulatedFields(cold, warm)) << "seed " << seed;
      EXPECT_EQ(cold.wallSeconds, warm.wallSeconds) << "seed " << seed;
    }
  }
}

TEST(EngineFuzz, StructurallyIdenticalProgramsShareMeasurements) {
  // Same seed, so same structure; the semantic keys must collide (names are
  // not part of the measurement key) and the second program's measurement
  // must be served from the first program's cache entry.
  const MachineConfig machine = MachineConfig::origin2000();
  Engine engine;
  Program p1 = testing::randomProgram(7);
  Program p2 = testing::randomProgram(7);

  ProgramVersion v1 = engine.version(p1, Strategy::NoOpt);
  ProgramVersion v2 = engine.version(p2, Strategy::NoOpt);
  const Measurement m1 = engine.measure(v1, 16, machine);
  const Measurement m2 = engine.measure(v2, 16, machine);
  EXPECT_TRUE(sameSimulatedFields(m1, m2));
  EXPECT_EQ(engine.stats().measurement.hits, 1u);
}

}  // namespace
}  // namespace gcr
