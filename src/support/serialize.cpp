#include "support/serialize.hpp"

#include <bit>

namespace gcr {

ByteWriter& ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  return *this;
}

ByteWriter& ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  return *this;
}

ByteWriter& ByteWriter::f64(double v) {
  return u64(std::bit_cast<std::uint64_t>(v));
}

ByteWriter& ByteWriter::str(std::string_view s) {
  u64(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
  return *this;
}

ByteWriter& ByteWriter::bytes(std::span<const std::uint8_t> s) {
  out_.insert(out_.end(), s.begin(), s.end());
  return *this;
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

bool ByteReader::b() {
  const std::uint8_t v = u8();
  GCR_CHECK(v <= 1, "serialized bool out of range");
  return v == 1;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::size_t n = seqLen(1);
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  std::span<const std::uint8_t> s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::size_t ByteReader::seqLen(std::size_t minElemBytes) {
  const std::uint64_t n = u64();
  GCR_CHECK(minElemBytes == 0 || n <= remaining() / minElemBytes,
            "serialized sequence length exceeds input");
  return static_cast<std::size_t>(n);
}

}  // namespace gcr
