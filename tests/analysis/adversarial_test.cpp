// The adversarial corpus, both directions:
//  * statically: every known-illegal case must be refused with the
//    documented (pass, rule) citation;
//  * dynamically: when the refused transform is forced through the low-level
//    APIs anyway, the execution result diverges from the original — the
//    refusal is a real bug caught, not conservatism.
#include "analysis/adversarial.hpp"

#include <gtest/gtest.h>

#include "interp/interp.hpp"
#include "interp/layout.hpp"
#include "ir/builder.hpp"
#include "ir/validate.hpp"
#include "xform/interchange.hpp"

namespace gcr {
namespace {

std::vector<std::uint64_t> arrayContents(const Program& p, std::int64_t n) {
  const DataLayout l = contiguousLayout(p, n);
  const ExecResult r = execute(p, l, {.n = n});
  std::vector<std::uint64_t> all;
  for (std::size_t a = 0; a < p.arrays.size(); ++a)
    for (std::uint64_t v :
         extractArray(r, l, p, static_cast<ArrayId>(a), n))
      all.push_back(v);
  return all;
}

const AdversarialCase& findCase(const std::vector<AdversarialCase>& cs,
                                const std::string& name) {
  for (const AdversarialCase& c : cs)
    if (c.name == name) return c;
  ADD_FAILURE() << "missing corpus case " << name;
  static AdversarialCase dummy;
  return dummy;
}

TEST(Adversarial, EveryCaseIsStaticallyRefused) {
  const std::vector<AdversarialCase> cs = adversarialCases();
  ASSERT_GE(cs.size(), 5u);
  for (const AdversarialCase& c : cs) {
    const std::vector<Diagnostic> ds = c.check(c.program, 16);
    EXPECT_TRUE(cites(ds, c.pass, c.rule))
        << c.name << ": expected a refusal citing [" << c.pass << "/"
        << c.rule << "]";
  }
}

TEST(Adversarial, RefusalsSurviveLargerMinN) {
  // Legality is exact for all N >= minN; growing the domain cannot turn an
  // illegal transform legal.
  for (const AdversarialCase& c : adversarialCases())
    EXPECT_TRUE(cites(c.check(c.program, 64), c.pass, c.rule)) << c.name;
}

TEST(Adversarial, ForcedInterchangeDiverges) {
  const std::vector<AdversarialCase> cs = adversarialCases();
  const AdversarialCase& c = findCase(cs, "interchange-negative-distance");
  Program forced = c.program.clone();
  interchangeNest(forced.top[0].node->loop());
  validate(forced);  // structurally fine — the bug is semantic
  EXPECT_NE(arrayContents(c.program, 24), arrayContents(forced, 24));
}

/// Fuse two single-statement loops into one forward loop at alignment 0 —
/// exactly what the refused fusion would have produced.
Program naiveFuse(const Program& p) {
  GCR_CHECK(p.top.size() == 2 && p.top[0].node->isLoop() &&
                p.top[1].node->isLoop(),
            "naiveFuse expects two top-level loops");
  Program q = p.clone();
  Loop& l1 = q.top[0].node->loop();
  Loop& l2 = q.top[1].node->loop();
  l1.reversed = false;
  for (Child& ch : l2.body) l1.body.push_back(std::move(ch));
  q.top.pop_back();
  q.renumber();
  validate(q);
  return q;
}

TEST(Adversarial, ForcedUnboundedAlignmentFusionDiverges) {
  const std::vector<AdversarialCase> cs = adversarialCases();
  const AdversarialCase& c = findCase(cs, "fusion-unbounded-alignment");
  EXPECT_NE(arrayContents(c.program, 24),
            arrayContents(naiveFuse(c.program), 24));
}

TEST(Adversarial, ForcedMixedDirectionFusionDiverges) {
  const std::vector<AdversarialCase> cs = adversarialCases();
  const AdversarialCase& c = findCase(cs, "fusion-mixed-direction");
  EXPECT_NE(arrayContents(c.program, 24),
            arrayContents(naiveFuse(c.program), 24));
}

}  // namespace
}  // namespace gcr
