// Cross-check of the static reuse-profile estimator against the dynamic
// reuse-distance measurement, on the paper's four applications.  The gate is
// the documented tolerance: geometric-mean CDF error <= 0.10 across apps.
#include "analysis/static_reuse.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "interp/interp.hpp"
#include "interp/layout.hpp"
#include "ir/builder.hpp"
#include "locality/reuse_distance.hpp"

namespace gcr {
namespace {

ReuseProfile measuredProfile(const Program& p, std::int64_t n) {
  const DataLayout l = contiguousLayout(p, n);
  ReuseDistanceSink sink(8);  // element-level, matching the estimator
  execute(p, l, {.n = n}, &sink);
  return sink.takeProfile();
}

TEST(StaticReuse, ScanHasLoopCarriedDistanceOne) {
  ProgramBuilder b("scan");
  const ArrayId A = b.array("A", {AffineN::N()});
  b.loop("i", 1, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(A, {i}), {b.ref(A, {i - 1})}); });
  Program p = b.take();
  const StaticReuseEstimate est = estimateReuseProfile(p);
  ASSERT_EQ(est.perSite.size(), 2u);
  // The read A[i-1] reuses the write A[i] of the previous iteration.
  EXPECT_EQ(est.perSite[0].cls, ReuseClass::LoopCarried);
  EXPECT_EQ(est.perSite[0].carryDelta, 1);
  EXPECT_FALSE(est.perSite[0].evadable);  // distance constant in N
  EXPECT_GT(est.accesses, 0u);
}

TEST(StaticReuse, CrossLoopReuseGrowsWithN) {
  // A written by one loop, read by the next: the reuse spans a full array
  // sweep — distance ~N, evadable.
  ProgramBuilder b("crossloop");
  const ArrayId A = b.array("A", {AffineN::N()});
  const ArrayId B = b.array("B", {AffineN::N()});
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(A, {i}), {}); });
  b.loop("i", 0, AffineN::N() - 1,
         [&](IxVar i) { b.assign(b.ref(B, {i}), {b.ref(A, {i})}); });
  Program p = b.take();
  const StaticReuseEstimate est = estimateReuseProfile(p);
  bool sawCrossUnit = false;
  for (const SiteReuseEstimate& e : est.perSite)
    if (e.cls == ReuseClass::CrossUnit) {
      sawCrossUnit = true;
      EXPECT_TRUE(e.evadable);
      EXPECT_GE(e.distance, 32u);  // ~ footprint of a sweep at n=64
    }
  EXPECT_TRUE(sawCrossUnit);
  EXPECT_GT(est.evadableFraction(), 0.0);
}

TEST(StaticReuse, EvadableSeamClassifiedFromSymbolicDegree) {
  // A read whose distance is min(256, 2N-3): the loop-carried candidate
  // (~2N) wins until N crosses ~130, then the same-iteration constant 256
  // caps it.  Sampling at n=64 and 2n=128 lands on the growing branch both
  // times (125 -> 253, growth 2.02 > 1.5), so the n/2n test misclassified
  // this bounded class as evadable; the symbolic degree of the min is 0.
  ProgramBuilder b("seam");
  const ArrayId A = b.array("A", {AffineN::N(), AffineN::N()});
  const ArrayId C = b.array("C", {AffineN::N()});
  const ArrayId E = b.array("E", {AffineN::N(), AffineN::N()});
  b.loop2("i", 1, AffineN::N() - 2, "j", 1, AffineN::N() - 2,
          [&](IxVar i, IxVar j) {
            b.assign(b.ref(A, {i, j}), {b.ref(A, {i - 1, j})});
            for (int k = 0; k < 63; ++k)  // 126 sites between the two reads
              b.assign(b.ref(C, {i}), {b.ref(C, {i})});
            b.assign(b.ref(E, {i, j}), {b.ref(A, {i - 1, j})});
          });
  const Program p = b.take();
  const StaticReuseEstimate est = estimateReuseProfile(p);
  int idx = -1;  // the LAST read of A is the capped site
  for (std::size_t k = 0; k < est.sites.size(); ++k)
    if (est.sites[k].array == A && !est.sites[k].isWrite)
      idx = static_cast<int>(k);
  ASSERT_GE(idx, 0);
  const SiteReuseEstimate& e = est.perSite[static_cast<std::size_t>(idx)];
  EXPECT_EQ(e.cls, ReuseClass::LoopCarried);
  EXPECT_EQ(e.distance, 125u);       // 2*64 - 3
  EXPECT_EQ(e.distanceLarge, 253u);  // the n/2n samples straddle the seam...
  EXPECT_GT(static_cast<double>(e.distanceLarge),
            1.5 * static_cast<double>(e.distance));
  EXPECT_EQ(e.distanceDegree, 0);  // ...but the formula min(256, 2N-3) is
  EXPECT_FALSE(e.evadable);        // bounded: not evadable
}

TEST(StaticReuse, AccountingIsConsistent) {
  for (const char* name : {"ADI", "Swim", "Tomcatv", "SP"}) {
    const Program p = apps::buildApp(name);
    const StaticReuseEstimate est = estimateReuseProfile(p);
    EXPECT_EQ(est.accesses, est.cold + est.totalReuses) << name;
    EXPECT_EQ(est.histogram.totalFinite(), est.totalReuses) << name;
    EXPECT_LE(est.evadableReuses, est.totalReuses) << name;
  }
}

TEST(StaticReuse, MatchesDynamicProfileWithinTolerance) {
  const std::int64_t n = 64;
  double logSum = 0.0;
  int count = 0;
  for (const char* name : {"Swim", "Tomcatv", "ADI", "SP"}) {
    const Program p = apps::buildApp(name);
    StaticReuseOptions so;
    so.n = n;
    const StaticReuseEstimate est = estimateReuseProfile(p, so);
    const ReuseProfile dyn = measuredProfile(p, n);
    const ProfileComparison cmp =
        compareHistograms(est.histogram, dyn.histogram);
    ::testing::Test::RecordProperty(name, cmp.avgCdfError);
    std::printf("[profile] %-8s avgCdfError=%.4f maxCdfError=%.4f bins=%d\n",
                name, cmp.avgCdfError, cmp.maxCdfError, cmp.bins);
    EXPECT_LT(cmp.avgCdfError, 0.25) << name;  // per-app sanity bound
    logSum += std::log(std::max(cmp.avgCdfError, 1e-4));
    ++count;
  }
  const double geomean = std::exp(logSum / count);
  std::printf("[profile] geomean avgCdfError=%.4f\n", geomean);
  // The documented tolerance gate (EXPERIMENTS.md).
  EXPECT_LE(geomean, 0.10);
}

TEST(StaticReuse, EvadablePredictionAgreesWithDynamicTrend) {
  // Evadable reuse is the paper's target class: distances growing with the
  // data size.  The static fraction should be substantial for these stencil
  // apps, matching the dynamic observation (Figure 2's premise).
  for (const char* name : {"Swim", "Tomcatv", "ADI", "SP"}) {
    const Program p = apps::buildApp(name);
    const StaticReuseEstimate est = estimateReuseProfile(p);
    EXPECT_GT(est.evadableFraction(), 0.1) << name;
    EXPECT_LE(est.evadableFraction(), 1.0) << name;
  }
}

}  // namespace
}  // namespace gcr
