// Figure 3: reuse-distance histograms — program order vs reuse-driven
// execution, for ADI at two input sizes and SP-like at two grid sizes, plus
// the reuse-based-fusion curve for the larger SP run (the lower-right panel).
//
// Each printed row is one log2 bin: a count y at bin x means y references
// had a reuse distance in [2^(x-1), 2^x).  The paper's claims to check:
//   * program order has "elevated hills" that move right as input grows
//     (evadable reuses);
//   * reuse-driven execution removes a large part of those hills and slows
//     the movement of the rest;
//   * source-level fusion realizes a large fraction of the ideal benefit.
#include <cstdio>

#include "apps/registry.hpp"
#include "bench_util.hpp"
#include "driver/measure.hpp"
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "ir/stats.hpp"
#include "reuse_driven/reuse_driven.hpp"
#include "support/table.hpp"

namespace {

using namespace gcr;

InstrTrace traceOf(const ProgramVersion& v, std::int64_t n) {
  InstrTrace t;
  const std::uint64_t refs = estimateDynamicRefs(v.program, n);
  t.reserve(refs, refs);
  DataLayout l = v.layoutAt(n);
  execute(v.program, l, {.n = n}, &t);
  return t;
}

void printHistograms(const std::string& title,
                     const std::vector<std::pair<std::string, Log2Histogram>>&
                         curves) {
  std::printf("\n-- %s --\n", title.c_str());
  int maxBin = 0;
  for (const auto& [name, h] : curves)
    maxBin = std::max(maxBin, h.highestNonEmptyBin());
  std::vector<std::string> header{"bin(log2 rd)"};
  for (const auto& [name, h] : curves) header.push_back(name);
  TextTable t(header);
  for (int bin = 0; bin <= maxBin; ++bin) {
    std::vector<std::string> row{std::to_string(bin)};
    for (const auto& [name, h] : curves)
      row.push_back(std::to_string(h.binCount(bin)));
    t.addRow(row);
  }
  std::printf("%s", t.render().c_str());
}

void panel(const std::string& app, std::int64_t n, bool withFusionCurve) {
  Engine& engine = bench::sessionEngine();
  Program p = apps::buildApp(app);
  // The pipeline is cached per app, so the two ADI / SP panels reuse it.
  ProgramVersion noOpt = engine.version(p, Strategy::NoOpt);
  InstrTrace trace = traceOf(noOpt, n);

  std::vector<std::pair<std::string, Log2Histogram>> curves;
  curves.emplace_back("program order", profileOrder(trace, programOrder(trace)));
  curves.emplace_back("reuse-driven",
                      profileOrder(trace, reuseDrivenOrder(trace)));
  if (withFusionCurve) {
    ProgramVersion fused = engine.version(p, Strategy::Fused);
    InstrTrace fusedTrace = traceOf(fused, n);
    curves.emplace_back("reuse-based fusion",
                        profileOrder(fusedTrace, programOrder(fusedTrace)));
  }
  char title[128];
  std::snprintf(title, sizeof title, "%s, n=%lld", app.c_str(),
                static_cast<long long>(n));
  printHistograms(title, curves);
}

}  // namespace

int main() {
  using namespace gcr;
  bench::printHeader(
      "Figure 3: effect of reuse-driven execution on reuse distances",
      "four panels: ADI 50x50 / 100x100, SP 14^3 / 28^3 (+fusion curve)");

  panel("ADI", 50, false);
  panel("ADI", 100, false);
  const std::int64_t spSmall = 10;
  const std::int64_t spLarge = gcr::bench::fullSize() ? 28 : 16;
  panel("SP", spSmall, false);
  panel("SP", spLarge, true);

  std::printf(
      "\nexpected shape: the program-order hill at high bins shifts right "
      "with input size;\nreuse-driven execution collapses most of it toward "
      "low bins; the fusion curve\nsits between the two (the paper: fusion "
      "realizes a large part of the ideal).\n");
  bench::printEngineStats();
  return 0;
}
