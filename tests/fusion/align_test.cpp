#include "fusion/align.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace gcr {
namespace {

constexpr std::int64_t kMinN = 16;

struct TwoUnits {
  Program p;
  std::vector<RefAtom> first, second;
};

// Build two single-loop units and collect their level-0 atoms.
TwoUnits build(const std::function<void(ProgramBuilder&, ArrayId, ArrayId)>&
                   makeUnits) {
  ProgramBuilder b("align");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(4)});
  ArrayId c = b.array("B", {AffineN::N() + AffineN(4)});
  makeUnits(b, a, c);
  TwoUnits out;
  out.p = b.take();
  out.first = collectAtoms(out.p, out.p.top[0], 0);
  out.second = collectAtoms(out.p, out.p.top[1], 0);
  return out;
}

TEST(Align, FlowDependenceGivesParametricBound) {
  // L1: A[i] = ...; L2: B[i] = f(A[i-2]).  s >= -2, reuse candidate -2.
  auto t = build([](ProgramBuilder& b, ArrayId a, ArrayId c) {
    b.loop("i", 2, AffineN::N(), [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
    b.loop("i", 2, AffineN::N(),
           [&](IxVar i) { b.assign(b.ref(c, {i}), {b.ref(a, {i - 2})}); });
  });
  const auto s = summarizeAlignment(t.first, t.second, kMinN);
  EXPECT_FALSE(s.hasUnbounded);
  EXPECT_TRUE(s.hasConstraint);
  EXPECT_EQ(s.sMin, -2);
  EXPECT_EQ(s.chooseAlignment(), -2);
}

TEST(Align, ReadReadPrefersClosestReuse) {
  // Both loops only read A (writes to disjoint arrays): no legality bound,
  // but the reuse candidate aligns the A accesses.
  auto t = build([](ProgramBuilder& b, ArrayId a, ArrayId c) {
    b.loop("i", 2, AffineN::N(),
           [&](IxVar i) { b.assign(b.ref(c, {i}), {b.ref(a, {i + 2})}); });
    b.loop("i", 2, AffineN::N(),
           [&](IxVar i) { b.assign(b.ref(c, {i}), {b.ref(a, {i})}); });
  });
  // Note both write B[i]: output dependence s >= 0 as well.
  const auto s = summarizeAlignment(t.first, t.second, kMinN);
  EXPECT_FALSE(s.hasUnbounded);
  // Candidates: A offset diff = 0 - 2 = -2? and B: 0.  Constraint s >= 0.
  EXPECT_EQ(s.sMin, 0);
  EXPECT_EQ(s.chooseAlignment(), 0);
}

TEST(Align, NegativeAlignmentWhenOnlyReads) {
  // L1 reads A[i+2] (writes B), L2 reads A[i] (writes C — no shared writes).
  ProgramBuilder b("neg");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(4)});
  ArrayId c = b.array("B", {AffineN::N() + AffineN(4)});
  ArrayId d = b.array("C", {AffineN::N() + AffineN(4)});
  b.loop("i", 2, AffineN::N(),
         [&](IxVar i) { b.assign(b.ref(c, {i}), {b.ref(a, {i + 2})}); });
  b.loop("i", 2, AffineN::N(),
         [&](IxVar i) { b.assign(b.ref(d, {i}), {b.ref(a, {i})}); });
  Program p = b.take();
  const auto s = summarizeAlignment(collectAtoms(p, p.top[0], 0),
                                    collectAtoms(p, p.top[1], 0), kMinN);
  EXPECT_FALSE(s.hasConstraint);
  ASSERT_FALSE(s.reuseCandidates.empty());
  EXPECT_EQ(s.chooseAlignment(), -2);  // bring A[i+2] and A[i] together
}

TEST(Align, InvariantReadOfWrittenArrayIsUnbounded) {
  // L1: A[i] = ...; L2: B[i] = f(A[N+2]) — every iteration of L2 reads the
  // element written by L1's last iterations: unbounded alignment.
  auto t = build([](ProgramBuilder& b, ArrayId a, ArrayId c) {
    b.loop("i", 2, AffineN::N() + AffineN(2),
           [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
    b.loop("i", 2, AffineN::N(), [&](IxVar i) {
      b.assign(b.ref(c, {i}), {b.ref(a, {cst(AffineN::N() + AffineN(2))})});
    });
  });
  const auto s = summarizeAlignment(t.first, t.second, kMinN);
  EXPECT_TRUE(s.hasUnbounded);
}

TEST(Align, BorderWriteReadBySingleIterationIsPeelable) {
  // L1 writes A[0] every iteration (via constant subscript); L2 reads
  // A[i-2], touching A[0] only at i=2: the sink interval is one boundary
  // iteration -> peelable rather than hopeless.
  auto t = build([](ProgramBuilder& b, ArrayId a, ArrayId c) {
    b.loop("i", 2, AffineN::N(),
           [&](IxVar i) { b.assign(b.ref(a, {cst(0)}), {b.ref(c, {i})}); });
    b.loop("i", 2, AffineN::N(),
           [&](IxVar i) { b.assign(b.ref(c, {i}), {b.ref(a, {i - 2})}); });
  });
  const auto s = summarizeAlignment(t.first, t.second, kMinN);
  ASSERT_TRUE(s.hasUnbounded);
  ASSERT_FALSE(s.unboundedPairs.empty());
  bool foundBoundarySink = false;
  for (const auto& pc : s.unboundedPairs) {
    if (pc.sinkLo == AffineN(2) && pc.sinkHi == AffineN(2))
      foundBoundarySink = true;
  }
  EXPECT_TRUE(foundBoundarySink);
}

TEST(Align, DisjointConstantColumnsNoDependence) {
  // 2-D: L1 writes column 0, L2 reads column 1 — provably independent.
  ProgramBuilder b("cols");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(2), AffineN::N() + AffineN(2)});
  b.loop("i", 0, AffineN::N(),
         [&](IxVar i) { b.assign(b.ref(a, {i, cst(0)}), {}); });
  b.loop("i", 0, AffineN::N(),
         [&](IxVar i) { b.assign(b.ref(a, {i, cst(1)}), {}); });
  Program p = b.take();
  const auto s = summarizeAlignment(collectAtoms(p, p.top[0], 0),
                                    collectAtoms(p, p.top[1], 0), kMinN);
  EXPECT_FALSE(s.hasUnbounded);
  EXPECT_FALSE(s.hasConstraint);
}

TEST(Align, RangesThatNeverMeetAreIndependent) {
  // L1 writes A[2..N/?]: use disjoint halves via offsets: L1 touches
  // A[i] for i in [2, 5]; L2 reads A[i] for i in [8, 12].
  ProgramBuilder b("ranges");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(4)});
  ArrayId c = b.array("B", {AffineN::N() + AffineN(4)});
  b.loop("i", 2, 5, [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
  b.loop("i", 8, 12, [&](IxVar i) { b.assign(b.ref(c, {i}), {b.ref(a, {i})}); });
  Program p = b.take();
  const auto s = summarizeAlignment(collectAtoms(p, p.top[0], 0),
                                    collectAtoms(p, p.top[1], 0), kMinN);
  EXPECT_FALSE(s.hasConstraint);
  EXPECT_FALSE(s.hasUnbounded);
}

TEST(Align, AnyDependenceDetects) {
  auto t = build([](ProgramBuilder& b, ArrayId a, ArrayId c) {
    b.loop("i", 2, AffineN::N(), [&](IxVar i) { b.assign(b.ref(a, {i}), {}); });
    b.loop("i", 2, AffineN::N(),
           [&](IxVar i) { b.assign(b.ref(c, {i}), {b.ref(a, {i})}); });
  });
  EXPECT_TRUE(anyDependence(t.first, t.second, kMinN));

  // Read-read only: not a dependence.
  ProgramBuilder b2("rr");
  ArrayId a2 = b2.array("A", {AffineN::N() + AffineN(4)});
  ArrayId c2 = b2.array("B", {AffineN::N() + AffineN(4)});
  ArrayId d2 = b2.array("C", {AffineN::N() + AffineN(4)});
  b2.loop("i", 2, AffineN::N(),
          [&](IxVar i) { b2.assign(b2.ref(c2, {i}), {b2.ref(a2, {i})}); });
  b2.loop("i", 2, AffineN::N(),
          [&](IxVar i) { b2.assign(b2.ref(d2, {i}), {b2.ref(a2, {i})}); });
  Program p2 = b2.take();
  EXPECT_FALSE(anyDependence(collectAtoms(p2, p2.top[0], 0),
                             collectAtoms(p2, p2.top[1], 0), kMinN));
}

}  // namespace
}  // namespace gcr
