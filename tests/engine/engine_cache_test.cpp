// Engine memoization: warm results must be byte-identical to the cold
// computation, agree with the direct (engine-less) primitives, and the
// caches must honor their capacity bounds.
#include <gtest/gtest.h>

#include <cstring>

#include "analysis/symbolic_reuse.hpp"
#include "apps/registry.hpp"
#include "engine/engine.hpp"
#include "ir/print.hpp"
#include "store/codec.hpp"

namespace gcr {
namespace {

bool sameSimulatedFields(const Measurement& a, const Measurement& b) {
  return std::memcmp(&a.counts, &b.counts, sizeof a.counts) == 0 &&
         a.cycles == b.cycles &&
         a.memoryTrafficBytes == b.memoryTrafficBytes &&
         a.effectiveBandwidth == b.effectiveBandwidth;
}

/// Cached values replay verbatim: even wall-clock fields must round-trip.
bool byteIdentical(const Measurement& a, const Measurement& b) {
  return sameSimulatedFields(a, b) && a.wallSeconds == b.wallSeconds &&
         a.accessesPerSecond == b.accessesPerSecond;
}

TEST(EngineCache, WarmMeasurementIsByteIdenticalToCold) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  ProgramVersion v = engine.version(p, Strategy::FusedRegrouped);
  const MachineConfig m = MachineConfig::origin2000();

  const Measurement cold = engine.measure(v, 40, m);
  const Measurement warm = engine.measure(v, 40, m);
  EXPECT_TRUE(byteIdentical(cold, warm));
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.measurement.hits, 1u);
  EXPECT_EQ(s.measurement.misses, 1u);
}

TEST(EngineCache, EngineAgreesWithDirectPrimitives) {
  Engine engine;
  Program p = apps::buildApp("Swim");
  const MachineConfig m = MachineConfig::origin2000();

  ProgramVersion direct = makeVersion(p, Strategy::FusedRegrouped);
  ProgramVersion cached = engine.version(p, Strategy::FusedRegrouped);
  EXPECT_EQ(cached.name, direct.name);
  EXPECT_EQ(toString(cached.program), toString(direct.program));

  const Measurement md = measure(direct, 32, m, 2);
  const Measurement me = engine.measure(cached, 32, m, 2);
  EXPECT_TRUE(sameSimulatedFields(md, me));
}

TEST(EngineCache, VersionRequestsShareOnePipelineRun) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  (void)engine.version(p, Strategy::Fused);
  (void)engine.version(p, Strategy::Fused);
  (void)engine.version(p, Strategy::Fused, VersionSpec{.fusionLevels = 2});
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.pipeline.hits, 1u);    // identical request
  EXPECT_EQ(s.pipeline.misses, 2u);  // distinct fusionLevels -> distinct key
}

TEST(EngineCache, PipelineResultsCloneIndependently) {
  Engine engine;
  Program p = apps::buildApp("Tomcatv");
  PipelineResult r1 = engine.pipeline(p);
  PipelineResult r2 = engine.pipeline(p);
  EXPECT_EQ(toString(r1.program), toString(r2.program));
  EXPECT_EQ(r1.diagnostics.size(), r2.diagnostics.size());
  EXPECT_EQ(engine.stats().pipeline.hits, 1u);
}

TEST(EngineCache, ReuseProfileIsMemoized) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  ProgramVersion v = engine.version(p, Strategy::NoOpt);
  const ReuseProfile cold = engine.reuseProfile(v, 48);
  const ReuseProfile warm = engine.reuseProfile(v, 48);
  EXPECT_EQ(cold.accesses, warm.accesses);
  EXPECT_EQ(cold.distinctData, warm.distinctData);
  EXPECT_EQ(cold.histogram.highestNonEmptyBin(),
            warm.histogram.highestNonEmptyBin());
  EXPECT_EQ(engine.stats().profile.hits, 1u);
}

TEST(EngineCache, CapacityOneMeasurementCacheEvicts) {
  Engine::Options opts;
  opts.measurementCacheCapacity = 1;
  Engine engine(opts);
  Program p = apps::buildApp("ADI");
  ProgramVersion v = engine.version(p, Strategy::NoOpt);
  const MachineConfig m = MachineConfig::origin2000();

  const Measurement a1 = engine.measure(v, 32, m);
  const Measurement b1 = engine.measure(v, 40, m);  // evicts the n=32 entry
  const Measurement a2 = engine.measure(v, 32, m);  // recomputed, not cached
  EXPECT_TRUE(sameSimulatedFields(a1, a2));

  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.measurement.hits, 0u);
  EXPECT_EQ(s.measurement.misses, 3u);
  EXPECT_GE(s.measurement.evictions, 1u);
  EXPECT_EQ(s.measurement.entries, 1u);
  (void)b1;
}

TEST(EngineCache, ClearCachesForcesRecomputeWithIdenticalResults) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  ProgramVersion v = engine.version(p, Strategy::Fused);
  const MachineConfig m = MachineConfig::origin2000();
  const Measurement before = engine.measure(v, 32, m);
  engine.clearCaches();
  const Measurement after = engine.measure(v, 32, m);
  EXPECT_TRUE(sameSimulatedFields(before, after));
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.measurement.misses, 2u);
  EXPECT_EQ(s.measurement.hits, 0u);
}

TEST(EngineCache, DistinctMachinesAreDistinctKeys) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  ProgramVersion v = engine.version(p, Strategy::NoOpt);
  (void)engine.measure(v, 32, MachineConfig::origin2000());
  (void)engine.measure(v, 32, MachineConfig::octane());
  EXPECT_EQ(engine.stats().measurement.misses, 2u);
  EXPECT_EQ(engine.stats().measurement.hits, 0u);
}

TEST(EngineCache, SymbolicProfileIsMemoized) {
  Engine engine;
  Program p = apps::buildApp("Swim");
  const SymbolicReuseProfile a = engine.symbolicProfile(p);
  const SymbolicReuseProfile b = engine.symbolicProfile(p);
  Engine::Stats s = engine.stats();
  EXPECT_EQ(s.symbolic.misses, 1u);
  EXPECT_EQ(s.symbolic.hits, 1u);
  // The cached value is the analysis verbatim (byte-identical encoding).
  EXPECT_EQ(store::encodeSymbolicProfile(a),
            store::encodeSymbolicProfile(analyzeSymbolicReuse(p)));
  EXPECT_EQ(store::encodeSymbolicProfile(a), store::encodeSymbolicProfile(b));
  // A different analysis domain is a different key.
  (void)engine.symbolicProfile(p, {.minN = 32});
  s = engine.stats();
  EXPECT_EQ(s.symbolic.misses, 2u);
  EXPECT_EQ(s.symbolic.hits, 1u);
}

TEST(EngineCache, SymbolicSubmitResolvesToSyncResult) {
  Engine engine;
  Program p = apps::buildApp("ADI");
  Future<Reply> f = engine.submit(SymbolicProfileRequest{p.clone(), {}});
  const SymbolicReuseProfile async = replyAs<SymbolicReuseProfile>(f.get());
  const SymbolicReuseProfile sync = engine.symbolicProfile(p);
  EXPECT_EQ(store::encodeSymbolicProfile(async),
            store::encodeSymbolicProfile(sync));
  // The async and sync paths share one cache: one miss, then a hit.
  EXPECT_EQ(engine.stats().symbolic.misses, 1u);
  EXPECT_EQ(engine.stats().symbolic.hits, 1u);
}

}  // namespace
}  // namespace gcr
