# Empty compiler generated dependencies file for bench_table6_misses.
# This may be replaced when dependencies are built.
