// gcrc — the command-line compiler driver.
//
// Runs the paper's pipeline over a bundled application (or a stress
// program), prints the transformation story, and can emit a self-contained
// C translation unit of the optimized program with the regrouped layout
// baked in — the "source-to-source compiler" as a tool.
//
//   gcrc --app Swim --n 64 --emit out.c [--steps 2]
//        [--no-fuse] [--no-regroup] [--levels K] [--order-levels]
//        [--print-ir] [--report]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "codegen/emit_c.hpp"
#include "gcr/gcr.hpp"

using namespace gcr;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: gcrc --app <ADI|Swim|Tomcatv|SP|Sweep3D> [options]\n"
               "  --n <size>        problem size for emission (default 64)\n"
               "  --steps <k>       time steps the emitted main() runs\n"
               "  --emit <file.c>   write the optimized program as C\n"
               "  --emit-orig <f.c> write the unoptimized program as C\n"
               "  --levels <k>      fuse only the outermost k levels\n"
               "  --no-fuse         disable fusion\n"
               "  --no-regroup      disable data regrouping\n"
               "  --order-levels    enable automatic loop interchange\n"
               "  --print-ir        print the IR before and after\n"
               "  --report          print fusion/regrouping reports\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string app;
  std::string emitPath, emitOrigPath;
  std::int64_t n = 64;
  std::uint64_t steps = 1;
  PipelineOptions opts;
  bool printIr = false, report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--app") app = value();
    else if (arg == "--n") n = std::atoll(value());
    else if (arg == "--steps") steps = std::strtoull(value(), nullptr, 10);
    else if (arg == "--emit") emitPath = value();
    else if (arg == "--emit-orig") emitOrigPath = value();
    else if (arg == "--levels") opts.fusionLevels = std::atoi(value());
    else if (arg == "--no-fuse") opts.fuse = false;
    else if (arg == "--no-regroup") opts.regroup = false;
    else if (arg == "--order-levels") opts.orderLevels = true;
    else if (arg == "--print-ir") printIr = true;
    else if (arg == "--report") report = true;
    else {
      usage();
      return 2;
    }
  }
  if (app.empty()) {
    usage();
    return 2;
  }

  Program p = apps::buildApp(app);
  std::printf("gcrc: %s — %s\n", app.c_str(), computeStats(p).summary().c_str());
  if (printIr) std::printf("\n-- original IR --\n%s\n", toString(p).c_str());

  if (!emitOrigPath.empty()) {
    std::ofstream out(emitOrigPath);
    out << emitC(p, contiguousLayout(p, n),
                 {.n = n, .emitMain = true, .timeSteps = steps});
    std::printf("wrote %s (original, contiguous layout)\n",
                emitOrigPath.c_str());
  }

  // One Engine per invocation: repeated emission paths below reuse the
  // cached pipeline run instead of re-optimizing.
  Engine engine;
  PipelineResult r = engine.pipeline(p, opts);
  std::printf("optimized: %s\n", computeStats(r.program).summary().c_str());
  if (report) {
    std::printf("fusions=%d embeddings=%d peels=%d\n", r.fusionReport.fusions,
                r.fusionReport.embeddings, r.fusionReport.peels);
    for (const auto& s : r.fusionReport.signals)
      std::printf("signal: %s\n", s.c_str());
    for (const auto& s : r.regroupReport.log)
      std::printf("group: %s\n", s.c_str());
  }
  if (printIr)
    std::printf("\n-- optimized IR --\n%s\n", toString(r.program).c_str());

  if (!emitPath.empty()) {
    std::ofstream out(emitPath);
    out << emitC(r.program, r.layoutAt(n),
                 {.n = n, .emitMain = true, .timeSteps = steps});
    std::printf("wrote %s (optimized%s layout)\n", emitPath.c_str(),
                r.regrouped ? ", regrouped" : ", contiguous");
  }

  // Always verify the transformation before declaring success.
  DataLayout l0 = contiguousLayout(p, 16);
  DataLayout l1 = r.layoutAt(16);
  ExecResult e0 = execute(p, l0, {.n = 16});
  ExecResult e1 = execute(r.program, l1, {.n = 16});
  const bool arraysComparable = p.arrays.size() == r.program.arrays.size();
  if (arraysComparable) {
    const bool same = sameArrayContents(p, e0, l0, e1, l1, 16);
    std::printf("verification at n=16: %s\n",
                same ? "contents identical" : "MISMATCH");
    return same ? 0 : 1;
  }
  std::printf("verification: array set changed by splitting; checksum "
              "original=%llu optimized=%llu (expected to differ only via "
              "splitting)\n",
              static_cast<unsigned long long>(contentChecksum(p, e0, l0, 16)),
              static_cast<unsigned long long>(
                  contentChecksum(r.program, e1, l1, 16)));
  return 0;
}
