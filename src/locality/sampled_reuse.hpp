// Sampled reuse-distance analysis (SHARDS-style spatial hash sampling).
//
// Exact tracking costs O(log T) time per access and O(D) space for the
// last-access map — the scaling limit for paper-sized inputs.  Spatial
// sampling fixes both: a datum is *sampled* iff a hash of its address falls
// under a threshold T_R = R * 2^64, so a rate-R tracker monitors an
// unbiased ~R fraction of all data and only pays for accesses to those.
// Because the sampled data are a uniform random subset of all data, the
// number of distinct *sampled* data between two accesses to a sampled datum
// is ~R times the true reuse distance; scaling the measured distance by 1/R
// gives an unbiased estimate, and scaling each histogram count by 1/R
// estimates the full histogram (cf. Waldspurger et al., "SHARDS", and the
// reuse-distance sampling literature referenced in PAPERS.md).
//
// At rate 1 the hash filter and both scalings are identity: the tracker is
// bit-for-bit the exact ReuseDistanceTracker, which the differential tests
// in tests/locality/sampled_reuse_test.cpp pin down.
#pragma once

#include <cstdint>

#include "interp/trace.hpp"
#include "locality/reuse_distance.hpp"

namespace gcr {

class SampledReuseTracker {
 public:
  static constexpr std::uint64_t kCold = Log2Histogram::kCold;
  /// Returned for accesses to data outside the sample; distinct from every
  /// finite distance and from kCold.
  static constexpr std::uint64_t kNotSampled = kCold - 1;

  /// rate is clamped to (0, 1]; 1.0 (the default) is exact tracking.
  explicit SampledReuseTracker(double rate = 1.0);

  /// Process one access.  Returns the *scaled* reuse distance (measured
  /// distance times 1/rate), kCold for the first access to a sampled datum,
  /// or kNotSampled for data outside the sample.
  std::uint64_t access(std::int64_t addr);

  bool isSampled(std::int64_t addr) const;

  double rate() const { return rate_; }
  /// Histogram weight of one sampled access: round(1/rate).
  std::uint64_t countScale() const { return countScale_; }

  std::uint64_t accesses() const { return accesses_; }  ///< all, sampled or not
  std::uint64_t sampledAccesses() const { return exact_.accesses(); }
  std::uint64_t distinctSampled() const { return exact_.distinctData(); }

  /// Pre-size for the expected *total* trace; internal structures are sized
  /// for the sampled fraction of it.
  void reserve(std::uint64_t expectedAccesses,
               std::uint64_t expectedDistinctData = 0);

 private:
  double rate_;
  double inverseRate_;
  std::uint64_t threshold_;   // sampled iff mix64(addr) < threshold_
  bool exact_mode_;
  std::uint64_t countScale_;
  std::uint64_t accesses_ = 0;
  ReuseDistanceTracker exact_;  // over the sampled data only
};

/// InstrSink adapter mirroring ReuseDistanceSink: flattens instructions
/// through a SampledReuseTracker and builds an *estimated* ReuseProfile —
/// distances and histogram counts scaled by 1/rate, `accesses` the true
/// total, `distinctData` the scaled estimate.  At rate 1 the profile equals
/// the exact sink's output exactly.
class SampledReuseSink final : public InstrSink {
 public:
  explicit SampledReuseSink(std::int64_t granularity = 8, double rate = 1.0);

  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) override;
  void onBlock(const InstrBlock& b) override;

  void reserve(std::uint64_t expectedAccesses,
               std::uint64_t expectedDistinctBytes = 0);

  const ReuseProfile& profile() const { return profile_; }
  ReuseProfile takeProfile();

 private:
  void touch(std::int64_t addr);

  std::int64_t granularity_;
  SampledReuseTracker tracker_;
  ReuseProfile profile_;
};

/// Sampled analogue of profileAddresses().
ReuseProfile profileAddressesSampled(const std::vector<std::int64_t>& addrs,
                                     std::int64_t granularity, double rate);

}  // namespace gcr
