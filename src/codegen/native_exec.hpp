// Native execution tier: runs compiled access plans as host machine code.
//
// NativeRuntime turns an AccessPlan into executable code in four steps —
// emit (emit_native.hpp), key, materialize, dispatch — with a cache tier at
// each level:
//
//   1. emit the plan's structure to a C translation unit;
//   2. key = hash(emitted source, compiler fingerprint, ABI version) — a
//      STRUCTURAL signature, independent of n/timeSteps, so one artifact
//      serves a whole size sweep;
//   3. materialize a loaded module for that key:
//        a. in-process module cache (LRU of dlopen'd objects);
//        b. persistent store lookup (ArtifactKind::CompiledPlan) — a warm
//           disk crosses process boundaries with zero compiler invocations;
//        c. out-of-process compile (native_cc.hpp), publish to the store;
//   4. dispatch run/trace through the module's entry points, feeding the
//      plan's numeric parameter table (nativeParams).
//
// Failure ladder: ANY failure — no compiler, compile error, dlopen error,
// ABI or parameter-count mismatch, store corruption — falls back to the
// plan interpreter (executePlan), which is bit-identical by contract, and
// records the reason (diagnostic(), counters().fallbacks).  The native tier
// can therefore never produce a wrong result, only a slower one.
//
// Thread safety: all public methods are safe for concurrent use.  Two
// threads racing on a cold key may both compile; publication is
// last-writer-wins with byte-identical content, so the only cost is one
// redundant compile (mirrors the store's own residual window).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "codegen/emit_native.hpp"
#include "codegen/native_cc.hpp"
#include "codegen/native_module.hpp"
#include "engine/lru_cache.hpp"
#include "engine/signature.hpp"
#include "interp/interp.hpp"
#include "interp/plan.hpp"
#include "store/store.hpp"

namespace gcr {

/// Monotonic observability counters of one runtime.
struct NativeCounters {
  std::uint64_t nativeRuns = 0;       ///< executions served by machine code
  std::uint64_t fallbacks = 0;        ///< executions served by executePlan
  std::uint64_t moduleCacheHits = 0;  ///< served by the in-process LRU
  std::uint64_t storeHits = 0;        ///< modules loaded from the store
  std::uint64_t storePuts = 0;        ///< artifacts published to the store
  std::uint64_t compiles = 0;         ///< compiler invocations (successful)
  std::uint64_t compileFailures = 0;  ///< compiler invocations that failed
};

class NativeRuntime {
 public:
  struct Options {
    /// Persistent tier for CompiledPlan artifacts; nullptr = no disk tier.
    /// Borrowed; must outlive the runtime.
    store::ArtifactStore* store = nullptr;
    /// When false, only the module cache and the store are consulted — the
    /// compiler is never invoked (warm-store verification mode).
    bool allowCompile = true;
    /// Loaded modules kept in process (keyed by artifact signature).
    std::size_t moduleCacheCapacity = 32;
  };

  /// Runs compiler discovery once, at construction (so tests can vary
  /// GCR_CC between runtimes but one runtime answers consistently).
  explicit NativeRuntime(Options opts);
  NativeRuntime() : NativeRuntime(Options()) {}

  /// Execute `plan` natively, falling back to the plan interpreter on any
  /// failure.  Results are bit-identical to executePlan / the tree walker:
  /// same memory image, same instruction count, same instruction stream.
  ExecResult execute(const AccessPlan& plan, const ExecOptions& opts,
                     InstrSink* sink = nullptr);

  /// The structural artifact key `plan` maps to under this runtime's
  /// compiler: hash(emitted source, compiler fingerprint, ABI version).
  Signature artifactKey(const AccessPlan& plan) const;

  const NativeCompiler& compiler() const { return compiler_; }
  bool compilerFound() const { return compiler_.found; }
  /// Reason of the most recent fallback (empty if none yet).
  std::string diagnostic() const;
  NativeCounters counters() const;

 private:
  std::shared_ptr<NativeModule> moduleFor(const NativeSource& src,
                                          std::string* why);
  Signature keyFor(const std::string& code) const;
  void noteFallback(const std::string& why);

  Options opts_;
  NativeCompiler compiler_;
  mutable std::mutex mu_;
  LruCache<Signature, std::shared_ptr<NativeModule>, SignatureHash> modules_;
  NativeCounters counters_;
  std::string diagnostic_;
  bool warned_ = false;
};

}  // namespace gcr
