// FFT kernel as a dynamic instruction trace, for the Section 2.2
// reuse-driven-execution study (the one program it did NOT improve:
// evadable reuses +6%).
//
// The butterfly subscripts (x[base+k], x[base+k+half]) are not expressible
// in the Figure-5 IR (one loop variable per subscript), so this app
// generates the exact dynamic trace of an in-place radix-2 Cooley-Tukey FFT
// directly — the reuse-driven simulator consumes traces, not programs, so
// this is a faithful substitution (see DESIGN.md).
#pragma once

#include <cstdint>

#include "interp/trace.hpp"

namespace gcr::apps {

/// Trace of an in-place radix-2 FFT over 2^logN points.  Each butterfly is
/// three instructions with true dataflow (t = x[a]; x[a] = f(t, x[b], w);
/// x[b] = g(t, x[b], w)); statement ids encode the stage so pairwise reuse
/// classes are stage-to-stage.
InstrTrace fftTrace(int logN);

}  // namespace gcr::apps
