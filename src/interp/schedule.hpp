// Schedule-aware replay of compiled access plans: the address streams a
// static parallel schedule assigns to each core.
//
// Parallelization model (the OpenMP shared-cache reuse-distance setting, see
// DESIGN.md §10): every *top-level* loop of the program is a parallel loop —
// its iterations are distributed over `cores` worker cores by a static
// schedule, and an implicit barrier separates consecutive top-level loops
// (and time steps).  Inner loops always run whole on whichever core owns the
// enclosing top-level iteration; bare top-level statements run on core 0.
//
// Two static schedules, matching `schedule(static)` semantics:
//   * Block  — the iteration sequence (in execution order, so a reversed
//     loop distributes its reversed order) splits into `cores` contiguous
//     chunks; the first (trips mod cores) chunks take the extra iteration.
//   * Cyclic — position p of the sequence goes to core (p mod cores).
//
// Replay is address-only: a statement instance's addresses are affine in the
// iteration variables and never depend on memory contents, so a core's
// sub-stream is exactly computable without value semantics.  The emitted
// stream preserves the serial plan order restricted to the slice —
// replaySlice with cores == 1 reproduces executePlan's sink stream
// instruction for instruction (pinned by tests/interp/schedule_test.cpp).
//
// replayInterleaved() is the exact-trace referee for the shared-LLC model:
// it materializes every core's sub-stream of a parallel region and merges
// them round-robin at statement-instance granularity (core 0 first), with
// barriers between regions.  O(region footprint) memory — intended for the
// small-n referee, not for full-size runs.
#pragma once

#include <string>

#include "interp/plan.hpp"

namespace gcr {

/// Static distribution of a parallel loop's iterations over cores.
enum class ParallelSchedule { Block, Cyclic };

const char* parallelScheduleName(ParallelSchedule s);

/// One core's share of a static parallel execution.
struct ScheduleSlice {
  int cores = 1;                                      ///< total worker cores
  int core = 0;                                       ///< this core, [0, cores)
  ParallelSchedule schedule = ParallelSchedule::Block;
};

/// Emit core `slice.core`'s address stream of the plan under the static
/// schedule, in serial plan order restricted to the slice.  Delivery is
/// batched through InstrSink::onBlock like executePlan's.
void replaySlice(const AccessPlan& plan, const ScheduleSlice& slice,
                 InstrSink* sink);

/// Emit the exact interleaved `cores`-core stream: per parallel region the
/// per-core sub-streams merge round-robin one statement instance at a time
/// (each instance's reads and write stay adjacent), with a barrier after
/// every region.  cores == 1 likewise reproduces the serial stream.
void replayInterleaved(const AccessPlan& plan, int cores,
                       ParallelSchedule schedule, InstrSink* sink);

}  // namespace gcr
