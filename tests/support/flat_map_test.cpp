#include "support/flat_map.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "support/prng.hpp"

namespace gcr {
namespace {

TEST(FlatMap64, InsertAndFind) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  m[42] = 7;
  m[-9] = 3;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7);
  EXPECT_EQ(*m.find(-9), 3);
  EXPECT_EQ(m.find(5), nullptr);
}

TEST(FlatMap64, DefaultValueInitialized) {
  FlatMap64<std::uint64_t> m;
  EXPECT_EQ(m[123], 0u);
  m[123] += 5;
  EXPECT_EQ(m[123], 5u);
}

TEST(FlatMap64, GrowthPreservesEntries) {
  FlatMap64<std::int64_t> m;
  for (std::int64_t k = 0; k < 10000; ++k) m[k * 977 - 31] = k;
  for (std::int64_t k = 0; k < 10000; ++k) {
    auto* v = m.find(k * 977 - 31);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(m.size(), 10000u);
}

TEST(FlatMap64, MatchesUnorderedMapUnderRandomOps) {
  FlatMap64<std::uint64_t> m;
  std::unordered_map<std::int64_t, std::uint64_t> ref;
  SplitMix64 rng(99);
  for (int op = 0; op < 50000; ++op) {
    const std::int64_t key = rng.nextInRange(-500, 500);
    const std::uint64_t val = rng.next();
    m[key] = val;
    ref[key] = val;
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto* got = m.find(k);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, v);
  }
}

TEST(FlatMap64, ClearEmpties) {
  FlatMap64<int> m;
  for (int k = 0; k < 100; ++k) m[k] = k;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(50), nullptr);
}

TEST(FlatMap64, ForEachVisitsAll) {
  FlatMap64<int> m;
  for (int k = 0; k < 64; ++k) m[k * 7] = k;
  int visited = 0;
  std::int64_t keySum = 0;
  m.forEach([&](std::int64_t k, int) {
    ++visited;
    keySum += k;
  });
  EXPECT_EQ(visited, 64);
  EXPECT_EQ(keySum, 7 * (63 * 64) / 2);
}

}  // namespace
}  // namespace gcr
