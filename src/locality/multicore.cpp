#include "locality/multicore.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "support/assert.hpp"

namespace gcr {

namespace {

/// One core's private L1+L2 driven by its slice stream: the MemoryHierarchy
/// access path (hierarchy.cpp) minus TLB and prefetch — an L1 miss reads
/// through the private L2, write-back write-allocate at both levels.
class PrivateLevelsSink final : public InstrSink {
 public:
  PrivateLevelsSink(const CacheConfig& l1, const CacheConfig& l2)
      : l1_(l1), l2_(l2) {}

  void access(std::int64_t addr, bool isWrite) {
    if (!l1_.access(addr, isWrite)) l2_.access(addr, isWrite);
  }
  void onInstr(int, std::span<const std::int64_t> reads,
               std::int64_t write) override {
    for (std::int64_t r : reads) access(r, false);
    access(write, true);
  }
  void onBlock(const InstrBlock& b) override {
    for (std::size_t i = 0; i < b.size(); ++i) {
      for (std::int64_t r : b.reads(i)) access(r, false);
      access(b.writes[i], true);
    }
  }

  const CacheStats& l1Stats() const { return l1_.stats(); }
  const CacheStats& l2Stats() const { return l2_.stats(); }

 private:
  SetAssocCache l1_;
  SetAssocCache l2_;
};

}  // namespace

Log2Histogram scaleReuseDistances(const Log2Histogram& h, int cores) {
  GCR_CHECK(cores >= 1, "scale needs at least one core");
  Log2Histogram out;
  const std::uint64_t mul = static_cast<std::uint64_t>(cores);
  for (int b = 0; b <= h.highestNonEmptyBin(); ++b) {
    const std::uint64_t count = h.binCount(b);
    if (count == 0) continue;
    // Scale the bin's representative (lower-edge) distance; for a
    // power-of-two core count this shifts every distance in the bin by
    // exactly log2(cores) bins, i.e. the scaling is bin-exact.
    const std::uint64_t low = Log2Histogram::binLow(b);
    const std::uint64_t scaled =
        low > std::numeric_limits<std::uint64_t>::max() / mul
            ? std::numeric_limits<std::uint64_t>::max() / 2
            : low * mul;
    out.add(scaled, count);
  }
  out.add(Log2Histogram::kCold, h.coldCount());
  return out;
}

MulticoreProfile analyzeMulticore(const AccessPlan& plan,
                                  const CacheTopology& topo,
                                  const MulticoreCostModel& cost,
                                  ThreadPool* pool) {
  GCR_CHECK(topo.cores >= 1, "topology needs at least one core");
  GCR_CHECK(topo.llc.lineSize > 0, "topology LLC needs a line size");
  const auto t0 = std::chrono::steady_clock::now();
  const int cores = topo.cores;

  struct CoreOut {
    CoreCacheStats stats;
    ReuseProfile lines;
  };
  std::vector<CoreOut> outs(static_cast<std::size_t>(cores));
  auto runCore = [&](std::size_t c) {
    PrivateLevelsSink priv(topo.l1, topo.l2);
    ReuseDistanceSink lines(topo.llc.lineSize);
    TeeSink tee({&priv, &lines});
    replaySlice(plan, {cores, static_cast<int>(c), topo.schedule}, &tee);
    CoreOut& o = outs[c];
    o.stats.refs = priv.l1Stats().accesses;
    o.stats.l1Misses = priv.l1Stats().misses;
    o.stats.l2Misses = priv.l2Stats().misses;
    o.stats.l2Writebacks = priv.l2Stats().writebacks;
    o.lines = lines.takeProfile();
    o.stats.lineAccesses = o.lines.accesses;
    o.stats.coldLines = o.lines.distinctData;
  };
  // Slot-per-core on the pool: cores share nothing, so results are
  // bit-identical for any thread count (PR 1's discipline).
  if (pool != nullptr && cores > 1) {
    pool->parallelFor(static_cast<std::size_t>(cores), runCore);
  } else {
    for (std::size_t c = 0; c < outs.size(); ++c) runCore(c);
  }

  MulticoreProfile mp;
  mp.cores = cores;
  mp.schedule = topo.schedule;
  mp.llcCapacityLines = static_cast<std::uint64_t>(topo.llcCapacityLines());
  mp.perCore.reserve(outs.size());
  for (const CoreOut& o : outs) {
    mp.perCore.push_back(o.stats);
    mp.shared.merge(scaleReuseDistances(o.lines.histogram, cores));
    mp.sharedAccesses += o.lines.accesses;
    mp.sharedColdLines += o.stats.coldLines;
  }
  const std::uint64_t finite = mp.shared.totalFinite();
  mp.llcMissFraction =
      finite > 0 ? static_cast<double>(
                       mp.shared.countAtLeast(mp.llcCapacityLines)) /
                       static_cast<double>(finite)
                 : 0.0;
  for (const CoreCacheStats& c : mp.perCore)
    mp.cycles = std::max(
        mp.cycles,
        cost.coreCycles(c.refs, c.l1Misses, c.l2Misses,
                        static_cast<double>(c.l2Misses) * mp.llcMissFraction));
  mp.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return mp;
}

ReuseProfile interleavedSharedProfile(const AccessPlan& plan,
                                      const CacheTopology& topo) {
  GCR_CHECK(topo.llc.lineSize > 0, "topology LLC needs a line size");
  ReuseDistanceSink sink(topo.llc.lineSize);
  replayInterleaved(plan, topo.cores, topo.schedule, &sink);
  return sink.takeProfile();
}

}  // namespace gcr
