#include "ir/print.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace gcr {
namespace {

TEST(Print, LoopAndSubscripts) {
  ProgramBuilder b("printy");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(2)});
  b.loop("i", 2, AffineN::N(), [&](IxVar i) {
    b.assign(b.ref(a, {i}), {b.ref(a, {i - 1})}, "recurrence");
  });
  Program p = b.take();
  const std::string s = toString(p);
  EXPECT_NE(s.find("for i = 2, N {"), std::string::npos);
  EXPECT_NE(s.find("A[i] = f0(A[i-1])"), std::string::npos);
  EXPECT_NE(s.find("// recurrence"), std::string::npos);
}

TEST(Print, GuardsRendered) {
  ProgramBuilder b("guards");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(2)});
  b.loop("i", 0, AffineN::N(), [&](IxVar i) {
    b.assign(b.ref(a, {i}), {});
  });
  Program p = b.take();
  p.top[0].node->loop().body[0].guards = {GuardSpec{0, AffineN(3), AffineN::N()}};
  const std::string s = toString(p);
  EXPECT_NE(s.find("when i in [3..N]"), std::string::npos);
}

TEST(Print, ConstantSubscriptsAndBorders) {
  ProgramBuilder b("borders");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(2)});
  b.assign(b.ref(a, {cst(1)}), {b.ref(a, {cst(AffineN::N())})});
  Program p = b.take();
  const std::string s = toString(p);
  EXPECT_NE(s.find("A[1] = f0(A[N])"), std::string::npos);
}

}  // namespace
}  // namespace gcr
