// Deterministic pseudo-random number generation for tests and workload
// generators.  SplitMix64: tiny, fast, excellent distribution, and — unlike
// std::mt19937 seeded via seed_seq — bit-identical across standard libraries.
#pragma once

#include <cstdint>

namespace gcr {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).  bound must be > 0.
  constexpr std::uint64_t nextBelow(std::uint64_t bound) {
    return next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::int64_t nextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(nextBelow(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  constexpr double nextUnit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// One-shot mixing function used by the interpreter to give every statement
/// exact, order-of-evaluation-independent value semantics.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mixCombine(std::uint64_t acc, std::uint64_t v) {
  return mix64(acc ^ (v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2)));
}

}  // namespace gcr
