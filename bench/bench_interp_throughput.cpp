// Interpreter throughput: tree-walking executor vs the compiled access-plan
// engine vs the native tier (plans compiled to shared objects), with and
// without a trace sink attached, over the four evaluation apps (ADI, Swim,
// Tomcatv, NAS/SP).
//
// These are the engines behind every table in the suite, so the benchmark
// also runs a three-way differential self-check (memory image, instruction
// count, and full instruction trace must be byte-identical across all
// engines) and refuses to report a speedup that changed the answers.  The
// native tier is additionally gated on its compile-once/run-many contract:
// a warm persistent store must serve each module with zero compiler
// invocations and byte-identical results (cold-compile vs warm-store load
// times are reported per app).  Results go to stdout and BENCH_interp.json
// (consumed by CI).
//
// What to expect (methodology and floor analysis in EXPERIMENTS.md): the
// plan engine already executes within a few percent of the serial
// mix-chain/store-to-load dependence floor, so native-over-plan gains are
// modest (~1.0-1.8x no sink, more with a sink attached); the decisive
// native win is compile-once/run-many — a warm store replaces seconds of
// compilation with a millisecond-scale dlopen.  CI enforces a regression
// floor, not the paper-style 3x that the dependence floor rules out.
//
// Sizes: GCR_BENCH_N overrides the grid size for all apps; GCR_FULL_SIZE=1
// selects the large preset.  Wall-clock numbers vary run to run; the
// self-check and warm-store verdicts must not.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "bench_util.hpp"
#include "codegen/native_exec.hpp"
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "interp/plan.hpp"
#include "support/table.hpp"

namespace {

using namespace gcr;

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Self-cleaning store directory for the cold-compile/warm-load cycle.
class TempStoreDir {
 public:
  TempStoreDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "gcr-bench-store.XXXXXX")
            .string();
    if (::mkdtemp(tmpl.data()) != nullptr) path_ = tmpl;
  }
  ~TempStoreDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Best-of-reps wall time of `run` (one full execution per call).
template <typename Run>
double bestOf(int reps, Run&& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now();
    run();
    best = std::min(best, now() - t0);
  }
  return best;
}

std::uint64_t countAccesses(const Program& p, const DataLayout& layout,
                            const ExecOptions& opts) {
  CountingSink count;
  execute(p, layout, opts, &count);
  return count.refs();
}

bool tracesIdentical(const InstrTrace& a, const InstrTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.stmtId(i) != b.stmtId(i) || a.writeAddr(i) != b.writeAddr(i))
      return false;
    const auto ra = a.reads(i);
    const auto rb = b.reads(i);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) return false;
  }
  return true;
}

/// All three engines must produce byte-identical results on this program
/// before any throughput number for it is trusted.  (When no C compiler is
/// available the native run falls back to the plan engine, which keeps the
/// check meaningful without making it vacuous: native_available reports the
/// tier's status separately.)
bool selfCheck(const Program& p, const DataLayout& layout, ExecOptions opts,
               NativeRuntime& rt) {
  const PlanCompileResult compiled = compilePlan(p, layout, opts);
  if (!compiled.ok()) return false;
  opts.engine = ExecEngine::TreeWalk;
  InstrTrace walkTrace;
  const ExecResult walk = execute(p, layout, opts, &walkTrace);
  opts.engine = ExecEngine::Plan;
  InstrTrace planTrace;
  const ExecResult plan = execute(p, layout, opts, &planTrace);
  InstrTrace nativeTrace;
  const ExecResult native = rt.execute(
      *compiled.plan, {.n = opts.n, .timeSteps = opts.timeSteps},
      &nativeTrace);
  return walk.instrCount == plan.instrCount &&
         walk.instrCount == native.instrCount && walk.memory == plan.memory &&
         walk.memory == native.memory &&
         tracesIdentical(walkTrace, planTrace) &&
         tracesIdentical(walkTrace, nativeTrace);
}

struct AppResult {
  std::string app;
  std::int64_t n = 0;
  std::uint64_t accesses = 0;
  double walkNoSink = 0, planNoSink = 0, nativeNoSink = 0;  // seconds
  double walkSink = 0, planSink = 0, nativeSink = 0;        // seconds
  double coldCompileSeconds = 0;  // emit + cc + dlopen + publish, once
  double warmLoadSeconds = 0;     // store get + dlopen in a fresh runtime
  bool checkOk = false;
  bool nativeRan = false;      // served by machine code, not fallback
  bool warmStoreOk = false;    // warm store: zero compiles, identical bytes

  double speedupNoSink() const { return walkNoSink / planNoSink; }
  double speedupSink() const { return walkSink / planSink; }
  double nativeOverPlanNoSink() const { return planNoSink / nativeNoSink; }
  double nativeOverPlanSink() const { return planSink / nativeSink; }
};

double geomean(const std::vector<double>& xs) {
  double logSum = 0;
  for (double x : xs) logSum += std::log(x);
  return std::exp(logSum / static_cast<double>(xs.size()));
}

std::int64_t benchSize(const std::string& app) {
  if (const char* env = std::getenv("GCR_BENCH_N")) {
    const std::int64_t n = std::atoll(env);
    if (n >= 8) return n;
  }
  const bool full = gcr::bench::fullSize();
  if (app == "SP") return full ? 40 : 20;  // 3-D nest: n^3 instances
  return full ? 256 : 96;
}

// The fig10 sweeps run multiple time steps per simulation; timing several
// steps measures the steady-state engine rate rather than the (identical,
// one-time) memory-initialization cost.  GCR_BENCH_T overrides.
std::uint64_t benchSteps() {
  if (const char* env = std::getenv("GCR_BENCH_T")) {
    const std::uint64_t t = static_cast<std::uint64_t>(std::atoll(env));
    if (t >= 1) return t;
  }
  return 8;
}

AppResult runApp(const std::string& app, int reps) {
  AppResult r;
  r.app = app;
  r.n = benchSize(app);
  Program p = apps::buildApp(app);
  // Deliberately engine-less (uncached makeVersion): this bench times the
  // raw executors that the Engine's caches sit in front of.
  ProgramVersion v = makeVersion(p, Strategy::NoOpt);
  DataLayout layout = v.layoutAt(r.n);

  const ExecOptions benchOpts{.n = r.n, .timeSteps = benchSteps()};
  const PlanCompileResult compiled = compilePlan(v.program, layout, benchOpts);
  if (!compiled.ok()) return r;  // checkOk false — caught by the gate

  // Cold native runtime over an empty store: the first execution pays the
  // whole emit + compile + dlopen + publish path.  The module's key is
  // structural, so the same module also serves the (smaller) self-check.
  TempStoreDir storeDir;
  auto store = store::ArtifactStore::open({.dir = storeDir.path()});
  NativeRuntime cold({.store = store ? store.get() : nullptr});

  const double tColdStart = now();
  const ExecResult nativeFirst = cold.execute(*compiled.plan, benchOpts);
  const double coldFirstSeconds = now() - tColdStart;
  r.nativeRan = cold.counters().nativeRuns == 1 && cold.counters().fallbacks == 0;

  // Correctness gate at a size small enough to hold three full traces.
  const std::int64_t checkN = std::min<std::int64_t>(r.n, 24);
  DataLayout checkLayout = v.layoutAt(checkN);
  r.checkOk = selfCheck(v.program, checkLayout,
                        {.n = checkN, .timeSteps = 2}, cold);

  ExecOptions walkOpts = benchOpts;
  walkOpts.engine = ExecEngine::TreeWalk;
  ExecOptions planOpts = benchOpts;
  planOpts.engine = ExecEngine::Plan;

  r.accesses = countAccesses(v.program, layout, planOpts);
  r.walkNoSink = bestOf(
      reps, [&] { execute(v.program, layout, walkOpts, nullptr); });
  r.planNoSink = bestOf(
      reps, [&] { execute(v.program, layout, planOpts, nullptr); });
  r.nativeNoSink =
      bestOf(reps, [&] { cold.execute(*compiled.plan, benchOpts); });
  r.walkSink = bestOf(reps, [&] {
    CountingSink sink;
    execute(v.program, layout, walkOpts, &sink);
  });
  r.planSink = bestOf(reps, [&] {
    CountingSink sink;
    execute(v.program, layout, planOpts, &sink);
  });
  r.nativeSink = bestOf(reps, [&] {
    CountingSink sink;
    cold.execute(*compiled.plan, benchOpts, &sink);
  });

  // One-time costs, reported honestly: cold compile = first-call overhead
  // over a steady-state run; warm load = a fresh "process" (runtime) that
  // may only use the store, timed the same way.
  r.coldCompileSeconds = std::max(0.0, coldFirstSeconds - r.nativeNoSink);
  if (store) {
    NativeRuntime warm({.store = store.get(), .allowCompile = false});
    const double tWarmStart = now();
    const ExecResult warmFirst = warm.execute(*compiled.plan, benchOpts);
    const double warmFirstSeconds = now() - tWarmStart;
    r.warmLoadSeconds = std::max(0.0, warmFirstSeconds - r.nativeNoSink);
    r.warmStoreOk = warm.counters().compiles == 0 &&
                    warm.counters().storeHits == 1 &&
                    warm.counters().fallbacks == 0 &&
                    warmFirst.memory == nativeFirst.memory &&
                    warmFirst.instrCount == nativeFirst.instrCount;
  }
  return r;
}

void writeJson(const std::vector<AppResult>& rows, bool nativeAvailable,
               double geoNoSink, double geoSink, double geoNativeNoSink,
               double geoNativeSink, bool allOk, bool warmAllOk) {
  bench::ResultWriter out("interp");
  JsonWriter& j = out.json();
  j.field("self_check_ok", allOk);
  j.field("native_available", nativeAvailable);
  j.field("warm_store_ok", warmAllOk);
  j.field("geomean_speedup_no_sink", geoNoSink, 3);
  j.field("geomean_speedup_with_sink", geoSink, 3);
  j.field("geomean_native_over_plan_no_sink", geoNativeNoSink, 3);
  j.field("geomean_native_over_plan_with_sink", geoNativeSink, 3);
  j.key("apps");
  j.beginArray();
  for (const AppResult& r : rows) {
    j.beginObject();
    j.field("app", r.app);
    j.field("n", r.n);
    j.field("accesses", r.accesses);
    j.field("walk_no_sink_s", r.walkNoSink, 6);
    j.field("plan_no_sink_s", r.planNoSink, 6);
    j.field("native_no_sink_s", r.nativeNoSink, 6);
    j.field("walk_with_sink_s", r.walkSink, 6);
    j.field("plan_with_sink_s", r.planSink, 6);
    j.field("native_with_sink_s", r.nativeSink, 6);
    j.field("speedup_no_sink", r.speedupNoSink(), 3);
    j.field("speedup_with_sink", r.speedupSink(), 3);
    j.field("native_over_plan_no_sink", r.nativeOverPlanNoSink(), 3);
    j.field("native_over_plan_with_sink", r.nativeOverPlanSink(), 3);
    j.field("cold_compile_s", r.coldCompileSeconds, 6);
    j.field("warm_load_s", r.warmLoadSeconds, 6);
    j.field("native_ran", r.nativeRan);
    j.field("warm_store_ok", r.warmStoreOk);
    j.field("self_check_ok", r.checkOk);
    j.endObject();
  }
  j.endArray();
  out.finish();
}

}  // namespace

int main() {
  using namespace gcr;
  bench::printHeader(
      "Interpreter throughput: tree walker vs compiled plan vs native code",
      "engine microbenchmark (methodology in EXPERIMENTS.md)");

  const int reps = bench::fullSize() ? 3 : 5;
  const std::vector<std::string> appNames = {"ADI", "Swim", "Tomcatv", "SP"};
  std::vector<AppResult> rows;
  for (const std::string& app : appNames) rows.push_back(runApp(app, reps));
  const bool nativeAvailable =
      std::all_of(rows.begin(), rows.end(),
                  [](const AppResult& r) { return r.nativeRan; });

  TextTable t({"app", "n", "accesses", "walk Macc/s", "plan Macc/s",
               "native Macc/s", "plan/walk", "native/plan", "check"});
  std::vector<double> spNoSink, spSink, natNoSink, natSink;
  bool allOk = true;
  bool warmAllOk = true;
  for (const AppResult& r : rows) {
    const double acc = static_cast<double>(r.accesses);
    t.addRow({r.app, std::to_string(r.n), std::to_string(r.accesses),
              TextTable::fmt(acc / r.walkNoSink / 1e6, 1),
              TextTable::fmt(acc / r.planNoSink / 1e6, 1),
              TextTable::fmt(acc / r.nativeNoSink / 1e6, 1),
              TextTable::fmt(r.speedupNoSink(), 2) + "x",
              TextTable::fmt(r.nativeOverPlanNoSink(), 2) + "x",
              r.checkOk ? "ok" : "FAIL"});
    spNoSink.push_back(r.speedupNoSink());
    spSink.push_back(r.speedupSink());
    natNoSink.push_back(r.nativeOverPlanNoSink());
    natSink.push_back(r.nativeOverPlanSink());
    allOk = allOk && r.checkOk;
    warmAllOk = warmAllOk && r.warmStoreOk;
  }
  std::printf("%s", t.render().c_str());

  TextTable t2({"app", "plan+sink Macc/s", "native+sink Macc/s",
                "native/plan+sink", "cold compile (s)", "warm load (s)",
                "warm zero-cc"});
  for (const AppResult& r : rows) {
    const double acc = static_cast<double>(r.accesses);
    t2.addRow({r.app, TextTable::fmt(acc / r.planSink / 1e6, 1),
               TextTable::fmt(acc / r.nativeSink / 1e6, 1),
               TextTable::fmt(r.nativeOverPlanSink(), 2) + "x",
               TextTable::fmt(r.coldCompileSeconds, 3),
               TextTable::fmt(r.warmLoadSeconds, 3),
               r.warmStoreOk ? "ok" : "FAIL"});
  }
  std::printf("\ncompile-once/run-many (native tier):\n%s", t2.render().c_str());

  const double geoNoSink = geomean(spNoSink);
  const double geoSink = geomean(spSink);
  const double geoNativeNoSink = geomean(natNoSink);
  const double geoNativeSink = geomean(natSink);
  std::printf("geomean plan-over-walk speedup: %.2fx without sink, %.2fx "
              "with counting sink\n", geoNoSink, geoSink);
  std::printf("geomean native-over-plan speedup: %.2fx without sink, %.2fx "
              "with counting sink\n", geoNativeNoSink, geoNativeSink);
  std::printf("differential self-check: %s\n",
              allOk ? "ok (engines byte-identical)" : "FAILED");
  if (nativeAvailable)
    std::printf("native tier: active; warm store %s\n",
                warmAllOk ? "serves every module with zero compiler "
                            "invocations (byte-identical)"
                          : "FAILED its zero-compile replay");
  else
    std::printf("native tier: unavailable (no usable C compiler); plan "
                "interpreter served the native columns\n");
  writeJson(rows, nativeAvailable, geoNoSink, geoSink, geoNativeNoSink,
            geoNativeSink, allOk, warmAllOk);

  // Gates: answers must match across engines always; with the native tier
  // active, the warm store must replay compile-free and native throughput
  // must at least clear a regression floor over the plan engine (the
  // dependence-floor analysis in EXPERIMENTS.md explains why the honest
  // bound is a floor near 1x, not a multiple).
  bool pass = allOk;
  if (nativeAvailable) {
    pass = pass && warmAllOk;
    if (geoNativeNoSink < 1.02) {
      std::printf("FAIL: native-over-plan geomean %.3fx below the 1.02x "
                  "regression floor\n", geoNativeNoSink);
      pass = false;
    }
  }
  return pass ? 0 : 1;
}
