
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/adi.cpp" "src/apps/CMakeFiles/gcr_apps.dir/adi.cpp.o" "gcc" "src/apps/CMakeFiles/gcr_apps.dir/adi.cpp.o.d"
  "/root/repo/src/apps/extra_kernels.cpp" "src/apps/CMakeFiles/gcr_apps.dir/extra_kernels.cpp.o" "gcc" "src/apps/CMakeFiles/gcr_apps.dir/extra_kernels.cpp.o.d"
  "/root/repo/src/apps/fft_trace.cpp" "src/apps/CMakeFiles/gcr_apps.dir/fft_trace.cpp.o" "gcc" "src/apps/CMakeFiles/gcr_apps.dir/fft_trace.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/gcr_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/gcr_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/sp.cpp" "src/apps/CMakeFiles/gcr_apps.dir/sp.cpp.o" "gcc" "src/apps/CMakeFiles/gcr_apps.dir/sp.cpp.o.d"
  "/root/repo/src/apps/sweep3d.cpp" "src/apps/CMakeFiles/gcr_apps.dir/sweep3d.cpp.o" "gcc" "src/apps/CMakeFiles/gcr_apps.dir/sweep3d.cpp.o.d"
  "/root/repo/src/apps/swim.cpp" "src/apps/CMakeFiles/gcr_apps.dir/swim.cpp.o" "gcc" "src/apps/CMakeFiles/gcr_apps.dir/swim.cpp.o.d"
  "/root/repo/src/apps/tomcatv.cpp" "src/apps/CMakeFiles/gcr_apps.dir/tomcatv.cpp.o" "gcc" "src/apps/CMakeFiles/gcr_apps.dir/tomcatv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/gcr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gcr_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gcr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
