#include "cachesim/hierarchy.hpp"

#include <gtest/gtest.h>

namespace gcr {
namespace {

TEST(MachineConfig, PaperGeometries) {
  const MachineConfig o2k = MachineConfig::origin2000();
  EXPECT_EQ(o2k.l1.sizeBytes, 32 * 1024);
  EXPECT_EQ(o2k.l1.lineSize, 32);
  EXPECT_EQ(o2k.l1.ways, 2);
  EXPECT_EQ(o2k.l2.sizeBytes, 4 * 1024 * 1024);
  EXPECT_EQ(o2k.l2.lineSize, 128);

  const MachineConfig oct = MachineConfig::octane();
  EXPECT_EQ(oct.l2.sizeBytes, 1024 * 1024);
  EXPECT_EQ(oct.l1.sizeBytes, o2k.l1.sizeBytes);
}

TEST(Hierarchy, L2OnlySeesL1Misses) {
  MemoryHierarchy h(MachineConfig::origin2000());
  h.access(0, false);
  for (int i = 0; i < 100; ++i) h.access(0, false);
  const MissCounts m = h.counts();
  EXPECT_EQ(m.refs, 101u);
  EXPECT_EQ(m.l1Misses, 1u);
  EXPECT_EQ(m.l2Misses, 1u);
}

TEST(Hierarchy, StreamingMissRatesMatchLineRatios) {
  // A pure streaming scan misses once per line: rate 8/32 in L1, and L2
  // misses once per 128B line = 1/4 of L1 misses.
  MemoryHierarchy h(MachineConfig::origin2000());
  for (std::int64_t a = 0; a < 64 * 1024 * 1024; a += 8) h.access(a, false);
  const MissCounts m = h.counts();
  EXPECT_NEAR(m.l1MissRate(), 8.0 / 32.0, 1e-6);
  EXPECT_NEAR(static_cast<double>(m.l2Misses) /
                  static_cast<double>(m.l1Misses),
              32.0 / 128.0, 1e-6);
}

TEST(Hierarchy, TlbMissesOncePerPageWhenStreaming) {
  MemoryHierarchy h(MachineConfig::origin2000());
  const std::int64_t pages = 256;
  for (std::int64_t a = 0; a < pages * h.config().pageSize; a += 8)
    h.access(a, false);
  EXPECT_EQ(h.counts().tlbMisses, static_cast<std::uint64_t>(pages));
}

TEST(Hierarchy, InstrSinkFlattens) {
  MemoryHierarchy h(MachineConfig::origin2000());
  const std::int64_t reads[] = {0, 8};
  h.onInstr(0, reads, 16);
  EXPECT_EQ(h.counts().refs, 3u);
}

TEST(Hierarchy, MemoryTrafficCountsFillsAndWritebacks) {
  MachineConfig cfg = MachineConfig::origin2000();
  MemoryHierarchy h(cfg);
  // Write a full L2 worth of data twice the capacity: forces dirty
  // evictions.
  const std::int64_t span = 2 * cfg.l2.sizeBytes;
  for (std::int64_t a = 0; a < span; a += 8) h.access(a, true);
  const MissCounts m = h.counts();
  EXPECT_GT(m.l2Writebacks, 0u);
  EXPECT_EQ(h.memoryTrafficBytes(),
            (m.l2Misses + m.l2Writebacks) *
                static_cast<std::uint64_t>(cfg.l2.lineSize));
}

TEST(Hierarchy, NextLinePrefetchHidesStreamingMisses) {
  // Streaming scan: with next-line prefetch almost every L2 line after the
  // first arrives before its demand access — misses drop, traffic does not.
  MachineConfig plain = MachineConfig::origin2000();
  MachineConfig pf = plain;
  pf.l2NextLinePrefetch = true;

  MemoryHierarchy h0(plain), h1(pf);
  for (std::int64_t a = 0; a < 32 * 1024 * 1024; a += 8) {
    h0.access(a, false);
    h1.access(a, false);
  }
  EXPECT_LT(h1.counts().l2Misses, h0.counts().l2Misses / 4);
  EXPECT_GT(h1.counts().l2Prefetches, 0u);
  EXPECT_GT(h1.counts().l2PrefetchHits, 0u);
  // Bandwidth is NOT saved: the same lines still cross the memory bus.
  EXPECT_GE(h1.memoryTrafficBytes(), h0.memoryTrafficBytes());
}

TEST(Hierarchy, EffectiveBandwidthRatio) {
  // A repeated scan of a cache-resident array transfers each line once but
  // references it many times: ratio >> 1.  A huge single scan: ratio ~ 8/128
  // at 8B refs per 128B line... per-line 16 refs, so ~1.0 with no reuse at
  // element granularity, < 1 once writebacks are counted.
  MemoryHierarchy h(MachineConfig::origin2000());
  for (int pass = 0; pass < 64; ++pass)
    for (std::int64_t a = 0; a < 64 * 1024; a += 8) h.access(a, false);
  EXPECT_GT(h.effectiveBandwidthRatio(), 8.0);
}

TEST(CostModel, MonotoneInMisses) {
  CostModel cm;
  MissCounts a{1000, 10, 5, 1, 0};
  MissCounts b{1000, 20, 5, 1, 0};
  EXPECT_LT(cm.cycles(a), cm.cycles(b));
  // Documented default weights.
  MissCounts unit{1, 1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(cm.cycles(unit), 1.0 + 8.0 + 60.0 + 40.0);
}

TEST(MachineConfig, ScaledDownShrinksCaches) {
  const MachineConfig s = MachineConfig::origin2000().scaledDown(4);
  EXPECT_EQ(s.l1.sizeBytes, 8 * 1024);
  EXPECT_EQ(s.l2.sizeBytes, 1024 * 1024);
  EXPECT_EQ(s.tlbEntries, 16);
}

}  // namespace
}  // namespace gcr
