// Two-level cache hierarchy + TLB, standing in for the hardware counters of
// the paper's SGI machines, plus the simple latency cost model that converts
// miss counts into the "execution time" bars of Figure 10.
#pragma once

#include <cstdint>
#include <string>

#include "cachesim/cache.hpp"
#include "interp/trace.hpp"

namespace gcr {

struct MachineConfig {
  CacheConfig l1;
  CacheConfig l2;
  int tlbEntries = 64;
  std::int64_t pageSize = 16 * 1024;
  /// Next-line prefetch into L2 on every L2 demand miss — the proxy for
  /// the MIPSpro compiler's software prefetching ("compiler-directed
  /// prefetching ... -Ofast" in Section 4.2).  Hides fill latency, spends
  /// bandwidth.
  bool l2NextLinePrefetch = false;
  std::string name;

  /// SGI Origin2000 (MIPS R12K): 32KB/32B 2-way L1, 4MB/128B 2-way L2.
  static MachineConfig origin2000();
  /// SGI Octane (MIPS R10K): as Origin2000 but 1MB L2.
  static MachineConfig octane();
  /// Geometry scaled by 1/k (same line sizes) for reduced-size studies.
  MachineConfig scaledDown(int k) const;
};

struct MissCounts {
  std::uint64_t refs = 0;
  std::uint64_t l1Misses = 0;
  std::uint64_t l2Misses = 0;
  std::uint64_t tlbMisses = 0;
  std::uint64_t l2Writebacks = 0;
  std::uint64_t l2Prefetches = 0;
  std::uint64_t l2PrefetchHits = 0;

  double l1MissRate() const {
    return refs ? static_cast<double>(l1Misses) / static_cast<double>(refs)
                : 0.0;
  }
  double l2MissRate() const {
    return refs ? static_cast<double>(l2Misses) / static_cast<double>(refs)
                : 0.0;
  }
  double tlbMissRate() const {
    return refs ? static_cast<double>(tlbMisses) / static_cast<double>(refs)
                : 0.0;
  }
};

/// Latency cost model (cycles).  Deliberately simple and documented: one
/// cycle per reference plus per-miss penalties.  Only *relative* times are
/// meaningful — exactly how Figure 10 presents them (normalized bars).
struct CostModel {
  double refCost = 1.0;
  double l1MissCost = 8.0;
  double l2MissCost = 60.0;
  double tlbMissCost = 40.0;

  double cycles(const MissCounts& m) const {
    return refCost * static_cast<double>(m.refs) +
           l1MissCost * static_cast<double>(m.l1Misses) +
           l2MissCost * static_cast<double>(m.l2Misses) +
           tlbMissCost * static_cast<double>(m.tlbMisses);
  }
};

/// Drives TLB + L1 + L2 from a flattened access stream; also usable as an
/// InstrSink directly.
class MemoryHierarchy final : public InstrSink {
 public:
  explicit MemoryHierarchy(const MachineConfig& cfg);

  void access(std::int64_t addr, bool isWrite);
  void onInstr(int stmtId, std::span<const std::int64_t> reads,
               std::int64_t write) override;
  void onBlock(const InstrBlock& b) override;

  MissCounts counts() const;
  const MachineConfig& config() const { return cfg_; }

  /// Bytes transferred from/to memory: L2 demand fills, prefetch fills, and
  /// writebacks.  The quantity the paper's strategy minimizes.
  std::uint64_t memoryTrafficBytes() const;

  /// Effective-bandwidth ratio: bytes the program actually referenced
  /// divided by bytes the memory system moved.  1.0 means every transferred
  /// byte was useful exactly once; higher means cache reuse amplified the
  /// transfers; low values signal wasted bandwidth (the paper's Section 1
  /// diagnosis).
  double effectiveBandwidthRatio() const;

 private:
  MachineConfig cfg_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache tlb_;
};

}  // namespace gcr
