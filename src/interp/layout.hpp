// Data layouts: affine per-array address maps.
//
// Every layout this library ever needs — contiguous allocation, inter-array
// padding (the "SGI compiler"-like baseline), and the paper's single- and
// multi-level data regrouping (Figure 7) — is expressible as a per-array
// affine map `byteAddr = base + sum_d stride_d * idx_d`.  The interpreter
// emits addresses through the map, so one trace/measurement pipeline serves
// all program versions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ir/ir.hpp"

namespace gcr {

struct ArrayLayout {
  std::int64_t base = 0;                ///< byte address of element (0,...,0)
  std::vector<std::int64_t> strides;    ///< bytes per unit step, per dimension
};

class DataLayout {
 public:
  DataLayout(std::vector<ArrayLayout> perArray, std::int64_t totalBytes)
      : perArray_(std::move(perArray)), totalBytes_(totalBytes) {}

  std::int64_t addressOf(ArrayId a, std::span<const std::int64_t> idx) const {
    const ArrayLayout& l = perArray_[static_cast<std::size_t>(a)];
    std::int64_t addr = l.base;
    for (std::size_t d = 0; d < idx.size(); ++d) addr += l.strides[d] * idx[d];
    return addr;
  }

  const ArrayLayout& layoutOf(ArrayId a) const {
    return perArray_[static_cast<std::size_t>(a)];
  }
  std::int64_t totalBytes() const { return totalBytes_; }
  std::size_t numArrays() const { return perArray_.size(); }

 private:
  std::vector<ArrayLayout> perArray_;
  std::int64_t totalBytes_;
};

/// Contiguous allocation in declaration order; within an array the last
/// dimension is contiguous (row-major; apps iterate the last dimension in
/// their innermost loops, mirroring the paper's column-major Fortran).
DataLayout contiguousLayout(const Program& p, std::int64_t n);

/// Contiguous allocation with `padBytes` of dead space between consecutive
/// arrays — models the SGI compiler's inter-array padding, which avoids
/// cache-set conflicts without changing spatial locality.
DataLayout paddedLayout(const Program& p, std::int64_t n,
                        std::int64_t padBytes);

/// Concrete extents of an array at problem size n.
std::vector<std::int64_t> concreteExtents(const ArrayDecl& d, std::int64_t n);

/// Number of elements of an array at problem size n.
std::int64_t elementCount(const ArrayDecl& d, std::int64_t n);

}  // namespace gcr
