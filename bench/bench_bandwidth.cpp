// Effective bandwidth — the paper's title claim, measured directly.
//
// Section 6: "the new global strategy achieved dramatic reductions in the
// volume of data transferred for the programs studied."  This bench reports
// the memory traffic (bytes moved across the memory bus: L2 demand fills +
// prefetch fills + writebacks) and the effective-bandwidth ratio (bytes the
// program referenced / bytes transferred) for each program version — and
// contrasts prefetching (hides latency, spends bandwidth) with the global
// strategy (reduces the traffic itself).
#include <cstdio>

#include "apps/registry.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"

int main() {
  using namespace gcr;
  bench::printHeader(
      "Effective bandwidth: memory traffic per program version",
      "Section 1 + Section 6: latency tools don't cut traffic; global "
      "fusion+regrouping does");

  struct AppRun {
    const char* name;
    std::int64_t n;
    std::uint64_t steps;
  };
  const AppRun runs[] = {{"Swim", 321, 2}, {"ADI", 1000, 1}, {"SP", 26, 1}};

  Engine& engine = bench::sessionEngine();
  for (const AppRun& run : runs) {
    Program p = apps::buildApp(run.name);
    MachineConfig plain = MachineConfig::origin2000();
    MachineConfig prefetch = plain;
    prefetch.l2NextLinePrefetch = true;

    struct Row {
      const char* label;
      const ProgramVersion version;
      const MachineConfig* machine;
    };
    // The two "original" rows reuse one cached pipeline run; only the
    // machine differs.
    const Row rows[] = {
        {"original", engine.version(p, Strategy::NoOpt), &plain},
        {"original + prefetch", engine.version(p, Strategy::NoOpt),
         &prefetch},
        {"fusion + regrouping", engine.version(p, Strategy::FusedRegrouped),
         &plain},
    };

    std::printf("\n-- %s, n=%lld --\n", run.name,
                static_cast<long long>(run.n));
    TextTable t({"version", "traffic (MB)", "traffic(norm)", "L2 misses",
                 "eff. bandwidth", "time(norm)"});
    double baseTraffic = 0, baseTime = 0;
    for (const Row& r : rows) {
      Measurement m = engine.measure(r.version, run.n, *r.machine, run.steps);
      if (baseTraffic == 0) {
        baseTraffic = static_cast<double>(m.memoryTrafficBytes);
        baseTime = m.cycles;
      }
      t.addRow({r.label,
                TextTable::fmt(static_cast<double>(m.memoryTrafficBytes) /
                               (1024.0 * 1024.0), 1),
                TextTable::fmt(static_cast<double>(m.memoryTrafficBytes) /
                               baseTraffic, 2),
                std::to_string(m.counts.l2Misses),
                TextTable::fmt(m.effectiveBandwidth, 2),
                TextTable::fmt(m.cycles / baseTime, 2)});
    }
    std::printf("%s", t.render().c_str());
  }
  std::printf(
      "\nexpected: prefetching cuts time but leaves traffic unchanged (or "
      "higher);\nthe global strategy cuts the traffic itself — higher "
      "effective bandwidth.\n");
  bench::printEngineStats();
  return 0;
}
