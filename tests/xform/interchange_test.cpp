#include "xform/interchange.hpp"

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "ir/builder.hpp"
#include "ir/stats.hpp"
#include "ir/validate.hpp"
#include "xform/distribute.hpp"

namespace gcr {
namespace {

bool sameSemantics(const Program& a, const Program& b, std::int64_t n) {
  DataLayout la = contiguousLayout(a, n);
  DataLayout lb = contiguousLayout(b, n);
  ExecResult ra = execute(a, la, {.n = n});
  ExecResult rb = execute(b, lb, {.n = n});
  for (std::size_t ar = 0; ar < a.arrays.size(); ++ar)
    if (extractArray(ra, la, a, static_cast<ArrayId>(ar), n) !=
        extractArray(rb, lb, b, static_cast<ArrayId>(ar), n))
      return false;
  return true;
}

// Transposed elementwise nest: for j { for i: A[i][j] = f(B[i][j]) }.
Program transposedCopy() {
  ProgramBuilder b("transposed");
  const AffineN hi = AffineN::N() - AffineN(1);
  ArrayId a = b.array("A", {AffineN::N(), AffineN::N()});
  ArrayId c = b.array("B", {AffineN::N(), AffineN::N()});
  b.loop2("j", 0, hi, "i", 0, hi,
          [&](IxVar j, IxVar i) { b.assign(b.ref(a, {i, j}), {b.ref(c, {i, j})}); });
  return b.take();
}

TEST(Interchange, LegalForElementwiseNest) {
  Program p = transposedCopy();
  EXPECT_TRUE(interchangeLegal(p, p.top[0].node->loop(), 16));
}

TEST(Interchange, SwapsHeadersAndDepths) {
  Program p = transposedCopy();
  Program q = p.clone();
  interchangeNest(q.top[0].node->loop());
  validate(q);
  const Loop& outer = q.top[0].node->loop();
  EXPECT_EQ(outer.var, "i");
  const Assign& s = outer.body[0].node->loop().body[0].node->assign();
  // A[i][j]: dim 0 now uses the OUTER variable (depth 0).
  EXPECT_EQ(s.lhs.subs[0].depth, 0);
  EXPECT_EQ(s.lhs.subs[1].depth, 1);
  EXPECT_TRUE(sameSemantics(p, q, 20));
}

TEST(Interchange, IllegalForAntiDiagonalDependence) {
  // A[i][j] = f(A[i-1][j+1]): distance (outer=+1, inner=-1) — the classic
  // interchange-preventing direction.
  ProgramBuilder b("diag");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(2), AffineN::N() + AffineN(2)});
  b.loop2("i", 1, AffineN::N(), "j", 1, AffineN::N(),
          [&](IxVar i, IxVar j) {
            b.assign(b.ref(a, {i, j}), {b.ref(a, {i - 1, j + 1})});
          });
  Program p = b.take();
  EXPECT_FALSE(interchangeLegal(p, p.top[0].node->loop(), 16));
}

TEST(Interchange, LegalForForwardDiagonalDependence) {
  // A[i][j] = f(A[i-1][j-1]): distance (+1, +1) — interchange keeps it
  // lexicographically positive.
  ProgramBuilder b("fdiag");
  ArrayId a = b.array("A", {AffineN::N() + AffineN(2), AffineN::N() + AffineN(2)});
  b.loop2("i", 1, AffineN::N(), "j", 1, AffineN::N(),
          [&](IxVar i, IxVar j) {
            b.assign(b.ref(a, {i, j}), {b.ref(a, {i - 1, j - 1})});
          });
  Program p = b.take();
  EXPECT_TRUE(interchangeLegal(p, p.top[0].node->loop(), 16));
  Program q = p.clone();
  interchangeNest(q.top[0].node->loop());
  EXPECT_TRUE(sameSemantics(p, q, 18));
}

TEST(Interchange, InnerOnlyRecurrenceStaysLegalAndCorrect) {
  // D[i][j] = f(D[i][j-1]): distance (0, +1); after interchange (+1, 0) —
  // legal, and this is exactly Tomcatv's solver pattern.
  ProgramBuilder b("solver");
  ArrayId d = b.array("D", {AffineN::N() + AffineN(2), AffineN::N() + AffineN(2)});
  b.loop2("j", 2, AffineN::N(), "i", 1, AffineN::N(),
          [&](IxVar j, IxVar i) {
            b.assign(b.ref(d, {i, j}), {b.ref(d, {i, j - 1})});
          });
  Program p = b.take();
  ASSERT_TRUE(interchangeLegal(p, p.top[0].node->loop(), 16));
  Program q = p.clone();
  interchangeNest(q.top[0].node->loop());
  EXPECT_TRUE(sameSemantics(p, q, 20));
}

TEST(Interchange, RejectsImperfectNests) {
  ProgramBuilder b("imperfect");
  const AffineN hi = AffineN::N() - AffineN(1);
  ArrayId a = b.array("A", {AffineN::N(), AffineN::N()});
  b.loop("i", 0, hi, [&](IxVar i) {
    b.assign(b.ref(a, {i, cst(0)}), {});
    b.loop("j", 1, hi, [&](IxVar j) { b.assign(b.ref(a, {i, j}), {}); });
  });
  Program p = b.take();
  EXPECT_FALSE(interchangeLegal(p, p.top[0].node->loop(), 16));
}

TEST(Interchange, AutoOrderingFixesTomcatv) {
  // The paper interchanged Tomcatv's solver nests by hand; the auto pass
  // must do it and recover the hand version's fusion results.
  Program raw = apps::buildApp("Tomcatv-noInterchange");
  Program fixed = raw.clone();
  const int changed = orderLevelsForFusion(fixed);
  EXPECT_GE(changed, 1);
  validate(fixed);
  EXPECT_TRUE(sameSemantics(raw, fixed, 20));

  PipelineOptions opts;
  opts.regroup = false;
  PipelineResult rRaw = runPipeline(raw, opts);
  PipelineResult rFixed = runPipeline(fixed, opts);
  EXPECT_LT(computeStats(rFixed.program).numLoopNests,
            computeStats(rRaw.program).numLoopNests);

  Program hand = apps::buildApp("Tomcatv");
  PipelineResult rHand = runPipeline(hand, opts);
  EXPECT_EQ(computeStats(rFixed.program).numLoopNests,
            computeStats(rHand.program).numLoopNests);
}

TEST(Interchange, AutoOrderingIsIdempotentOnConsistentPrograms) {
  Program p = apps::buildApp("ADI");
  Program q = p.clone();
  EXPECT_EQ(orderLevelsForFusion(q), 0);
}

}  // namespace
}  // namespace gcr
