#include "ir/stats.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace gcr {

ProgramStats computeStats(const Program& p) {
  ProgramStats st;
  st.numArrays = static_cast<int>(p.arrays.size());
  st.numStatements = p.numStatements();

  std::set<ArrayId> used;
  forEachAssign(p, [&](const Assign& a, const std::vector<const Loop*>&) {
    used.insert(a.lhs.array);
    for (const ArrayRef& r : a.rhs) used.insert(r.array);
  });
  st.numArraysUsed = static_cast<int>(used.size());

  for (const Child& c : p.top)
    if (c.node->isLoop()) ++st.numLoopNests;

  forEachLoop(p, [&](const Loop&, int level) {
    ++st.numLoops;
    st.maxLevel = std::max(st.maxLevel, level + 1);
    if (static_cast<std::size_t>(level) >= st.loopsPerLevel.size())
      st.loopsPerLevel.resize(static_cast<std::size_t>(level) + 1, 0);
    ++st.loopsPerLevel[static_cast<std::size_t>(level)];
  });
  return st;
}

std::uint64_t estimateDynamicRefs(const Program& p, std::int64_t n,
                                  std::uint64_t timeSteps) {
  std::uint64_t total = 0;
  forEachAssign(p, [&](const Assign& a,
                       const std::vector<const Loop*>& stack) {
    std::uint64_t iters = 1;
    for (const Loop* l : stack) {
      const std::int64_t lo = l->lo.eval(n);
      const std::int64_t hi = l->hi.eval(n);
      iters *= hi >= lo ? static_cast<std::uint64_t>(hi - lo + 1) : 0;
    }
    total += iters * (a.rhs.size() + 1);
  });
  return total * timeSteps;
}

std::string ProgramStats::summary() const {
  std::ostringstream os;
  os << numLoops << " loops in " << numLoopNests << " nests (max depth "
     << maxLevel << "), " << numStatements << " statements, " << numArraysUsed
     << "/" << numArrays << " arrays used; per level:";
  for (std::size_t l = 0; l < loopsPerLevel.size(); ++l)
    os << " L" << l << "=" << loopsPerLevel[l];
  return os.str();
}

}  // namespace gcr
