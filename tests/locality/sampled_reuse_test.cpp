// Differential tests pinning the sampled reuse-distance tracker to the
// exact one: at rate 1 the two are bit-identical; at rate >= 1/64 the
// sampled missFractionAtCapacity must sit within 5% absolute of the exact
// value, on synthetic traces and on randomProgram pipelines alike.
#include "locality/sampled_reuse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/registry.hpp"
#include "driver/measure.hpp"
#include "common/random_program.hpp"
#include "support/prng.hpp"

namespace gcr {
namespace {

constexpr double kRate64 = 1.0 / 64.0;
constexpr double kBound = 0.05;  // 5% absolute, per the acceptance criterion

// A trace with layered locality: repeated scans over nested working sets
// plus a uniform-random component, so the reuse-distance histogram has mass
// both below and above the capacities we probe.
std::vector<std::int64_t> layeredTrace(std::uint64_t seed, std::size_t len,
                                       std::int64_t span) {
  SplitMix64 rng(seed);
  std::vector<std::int64_t> trace;
  trace.reserve(len);
  while (trace.size() < len) {
    switch (rng.nextBelow(3)) {
      case 0: {  // sequential scan of a random subrange
        const std::int64_t base = rng.nextInRange(0, span / 2);
        const std::int64_t w = rng.nextInRange(64, span / 4);
        for (std::int64_t i = 0; i < w && trace.size() < len; ++i)
          trace.push_back(base + i);
        break;
      }
      case 1: {  // tight loop over a small hot set
        const std::int64_t base = rng.nextInRange(0, span - 40);
        for (int rep = 0; rep < 6; ++rep)
          for (std::int64_t i = 0; i < 32 && trace.size() < len; ++i)
            trace.push_back(base + i);
        break;
      }
      default:  // uniform random
        for (int i = 0; i < 128 && trace.size() < len; ++i)
          trace.push_back(rng.nextInRange(0, span - 1));
    }
  }
  return trace;
}

TEST(SampledReuse, Rate1IsBitIdenticalPerAccess) {
  SplitMix64 rng(99);
  ReuseDistanceTracker exact;
  SampledReuseTracker sampled(1.0);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t addr = rng.nextInRange(0, 300);
    ASSERT_EQ(sampled.access(addr), exact.access(addr)) << "access " << i;
  }
  EXPECT_EQ(sampled.sampledAccesses(), exact.accesses());
  EXPECT_EQ(sampled.distinctSampled(), exact.distinctData());
}

TEST(SampledReuse, Rate1ProfileEqualsExactProfile) {
  const std::vector<std::int64_t> trace = layeredTrace(7, 20000, 4096);
  const ReuseProfile exact = profileAddresses(trace);
  const ReuseProfile sampled = profileAddressesSampled(trace, 1, 1.0);
  EXPECT_EQ(sampled.histogram.toCsv(), exact.histogram.toCsv());
  EXPECT_EQ(sampled.histogram.coldCount(), exact.histogram.coldCount());
  EXPECT_EQ(sampled.accesses, exact.accesses);
  EXPECT_EQ(sampled.distinctData, exact.distinctData);
}

TEST(SampledReuse, WithinBoundOnLayeredTraces) {
  // Spatial sampling at rate R resolves capacities well above 1/R: probe
  // caps >= 16/R over a span wide enough to sample ~1000 distinct data.
  for (std::uint64_t seed : {11u, 23u, 42u}) {
    const std::vector<std::int64_t> trace = layeredTrace(seed, 400000, 65536);
    const ReuseProfile exact = profileAddresses(trace);
    const ReuseProfile sampled = profileAddressesSampled(trace, 1, kRate64);
    for (std::uint64_t cap : {1024ull, 8192ull, 65536ull}) {
      const double e = exact.missFractionAtCapacity(cap);
      const double s = sampled.missFractionAtCapacity(cap);
      EXPECT_NEAR(s, e, kBound) << "seed " << seed << " cap " << cap;
    }
  }
}

TEST(SampledReuse, WithinBoundAtCoarserRates) {
  // Rates above 1/64 must only get more accurate.
  const std::vector<std::int64_t> trace = layeredTrace(5, 150000, 8192);
  const ReuseProfile exact = profileAddresses(trace);
  for (double rate : {1.0 / 32.0, 1.0 / 16.0, 1.0 / 4.0}) {
    const ReuseProfile sampled = profileAddressesSampled(trace, 1, rate);
    for (std::uint64_t cap : {64ull, 1024ull, 8192ull}) {
      EXPECT_NEAR(sampled.missFractionAtCapacity(cap),
                  exact.missFractionAtCapacity(cap), kBound)
          << "rate " << rate << " cap " << cap;
    }
  }
}

TEST(SampledReuse, WithinBoundOnRandomProgramPipelines) {
  // End-to-end through reuseProfileOf() on random programs.  n is grown per
  // seed until the program touches >= 64K distinct elements, so rate 1/64
  // samples ~1000 distinct data — enough for the histogram *shape* (which
  // missFractionAtCapacity normalizes by) to stabilize.  Accuracy is judged
  // the way the sampling literature does: mean absolute error across the
  // whole miss-ratio curve, plus a pointwise check at well-resolved caps.
  testing::RandomProgramOptions opts;
  opts.allowTwoDim = true;
  opts.allowReversed = true;
  for (std::uint64_t seed : {3u, 17u, 29u}) {
    Program p = testing::randomProgram(seed, opts);
    ProgramVersion v = makeVersion(p, Strategy::NoOpt);
    std::int64_t n = 256;
    while (n < 16384 &&
           v.layoutAt(n).totalBytes() / 8 < std::int64_t{64} * 1024)
      n *= 2;
    const ReuseProfile exact = reuseProfileOf(v, n);
    const ReuseProfile sampled =
        reuseProfileOf(v, n, 1, kRate64);
    EXPECT_EQ(sampled.accesses, exact.accesses);  // all refs are observed

    double sumErr = 0.0;
    int caps = 0;
    for (std::uint64_t cap = 1024; cap <= 4 * exact.distinctData; cap *= 2) {
      sumErr += std::abs(sampled.missFractionAtCapacity(cap) -
                         exact.missFractionAtCapacity(cap));
      ++caps;
    }
    ASSERT_GT(caps, 0) << "seed " << seed;
    EXPECT_LT(sumErr / caps, kBound) << "seed " << seed << " n " << n;

    // Far above the data-set size, both curves must agree pointwise: no
    // sampled distance can overshoot that far.
    const std::uint64_t big = 8 * exact.distinctData;
    EXPECT_NEAR(sampled.missFractionAtCapacity(big),
                exact.missFractionAtCapacity(big), kBound)
        << "seed " << seed;
  }
}

TEST(SampledReuse, RealAppProfileWithinBound) {
  // The tentpole use case: paper-app reuse profiles at rate 1/64.
  for (const char* app : {"ADI", "Swim"}) {
    Program prog = apps::buildApp(app);
    ProgramVersion v = makeVersion(prog, Strategy::NoOpt);
    const std::int64_t n = 128;
    const ReuseProfile exact = reuseProfileOf(v, n);
    const ReuseProfile sampled =
        reuseProfileOf(v, n, 1, kRate64);
    for (std::uint64_t cap : {1024ull, 8192ull, 65536ull}) {
      EXPECT_NEAR(sampled.missFractionAtCapacity(cap),
                  exact.missFractionAtCapacity(cap), kBound)
          << app << " cap " << cap;
    }
  }
}

TEST(SampledReuse, ScaledDistancesLandInScaledBins) {
  // A two-pass scan over M items has all pass-2 reuses at distance M-1.
  // Sampling measures ~rate*(M-1) among sampled data and scales back: the
  // estimates must cluster near M, i.e. within one log2 bin of the truth.
  constexpr std::int64_t kM = 1 << 14;
  std::vector<std::int64_t> trace;
  for (int pass = 0; pass < 2; ++pass)
    for (std::int64_t i = 0; i < kM; ++i) trace.push_back(i);
  const ReuseProfile sampled = profileAddressesSampled(trace, 1, kRate64);
  const int trueBin = Log2Histogram::binOf(kM - 1);
  std::uint64_t near = 0, far = 0;
  for (int b = 0; b <= Log2Histogram::kMaxBin; ++b) {
    if (std::abs(b - trueBin) <= 1)
      near += sampled.histogram.binCount(b);
    else
      far += sampled.histogram.binCount(b);
  }
  EXPECT_GT(near, 0u);
  EXPECT_LT(static_cast<double>(far),
            0.05 * static_cast<double>(near + far));
}

}  // namespace
}  // namespace gcr
